"""Tests for the whole-program semantic passes in repro.lint.

Covers the three flow-aware families — unit-dimension inference
(UD1xx), determinism taint tracking (DT2xx), round-trip completeness
(RT3xx) — each with true-positive *and* false-positive fixtures, the
interprocedural link (dimensions and taint resolved across function
and module boundaries), and the engine growth around them: the
incremental cache (warm runs must be bit-identical to cold ones — a
hypothesis property), parallel analysis, severity tiers, SARIF
export, and baseline migration for the new rule ids.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.lint import (
    Baseline,
    LintCache,
    all_rules,
    analyze_file,
    config_hash,
    file_fingerprint,
    get_rule,
    lint_paths,
    lint_source,
    load_baseline,
    report_to_sarif,
    write_baseline,
)

#: Path handed to lint_source so fixtures count as in-package modules.
FAKE = "src/repro/fake_module.py"


def rule_ids(source: str, path: str = FAKE) -> list:
    return sorted({v.rule_id for v in lint_source(source, path=path)})


def hits(source: str, rule_id: str, path: str = FAKE) -> int:
    return sum(1 for v in lint_source(source, path=path)
               if v.rule_id == rule_id)


# --------------------------------------------------------------------------
# UD1xx: unit-dimension inference
# --------------------------------------------------------------------------


class TestDimensionInference:
    def test_mixed_scale_addition_fires(self):
        assert hits("def f(stall_seconds: float, frame_ms: float)"
                    " -> float:\n"
                    "    return stall_seconds + frame_ms\n",
                    "UD101") == 1

    def test_same_scale_addition_clean(self):
        assert hits("def f(a_seconds: float, b_seconds: float) -> float:\n"
                    "    return a_seconds + b_seconds\n", "UD101") == 0

    def test_mixed_kind_addition_fires(self):
        assert hits("def f(total_energy: float, stall_seconds: float)"
                    " -> float:\n"
                    "    return total_energy + stall_seconds\n",
                    "UD101") == 1

    def test_comparison_across_scales_fires(self):
        assert hits("def f(stall_seconds: float, budget_ms: float)"
                    " -> bool:\n"
                    "    return stall_seconds > budget_ms\n",
                    "UD101") == 1

    def test_double_conversion_fires(self):
        # to_mj expects canonical joules; feeding it a _mj value
        # double-converts.
        assert hits("from repro.units import to_mj\n"
                    "def f(energy_mj: float) -> float:\n"
                    "    return to_mj(energy_mj)\n", "UD101") == 1

    def test_correct_conversion_clean(self):
        assert hits("from repro.units import to_mj\n"
                    "def f(total_energy: float) -> float:\n"
                    "    return to_mj(total_energy)\n", "UD101") == 0

    def test_unit_constant_conversion_understood(self):
        # x_ms * MS is the canonical idiom: milli -> canonical.
        assert rule_ids("from repro.units import MS\n"
                        "def f(delay_ms: float, stall_seconds: float)"
                        " -> float:\n"
                        "    return delay_ms * MS + stall_seconds\n"
                        ) == []

    def test_power_times_time_is_energy(self):
        assert hits("def f(avg_power: float, active_seconds: float,\n"
                    "      total_energy: float) -> float:\n"
                    "    return total_energy + avg_power * "
                    "active_seconds\n", "UD101") == 0

    def test_division_by_count_preserves_dimension(self):
        assert hits("def f(total_energy: float, n_frames: int,\n"
                    "      budget_energy: float) -> float:\n"
                    "    return budget_energy + total_energy / "
                    "n_frames\n", "UD101") == 0

    def test_store_against_name_claim_fires(self):
        assert hits("def f(stall_seconds: float) -> None:\n"
                    "    stall_ms = stall_seconds\n"
                    "    print(stall_ms)\n", "UD102") == 1

    def test_store_with_conversion_clean(self):
        assert hits("from repro.units import to_ms\n"
                    "def f(stall_seconds: float) -> None:\n"
                    "    stall_ms = to_ms(stall_seconds)\n"
                    "    print(stall_ms)\n", "UD102") == 0

    def test_return_against_function_name_fires(self):
        assert hits("def total_ms(elapsed_seconds: float) -> float:\n"
                    "    return elapsed_seconds\n", "UD102") == 1

    def test_return_with_conversion_clean(self):
        assert hits("from repro.units import to_ms\n"
                    "def total_ms(elapsed_seconds: float) -> float:\n"
                    "    return to_ms(elapsed_seconds)\n", "UD102") == 0

    def test_interprocedural_return_dim_resolved(self):
        # g() mixes canonical joules with per_frame_mj()'s milli return
        # — only decidable through the call graph.
        source = ("def per_frame_mj(x: float) -> float:\n"
                  "    frame_mj = 2.0 * x\n"
                  "    return frame_mj\n"
                  "def g(total_joules: float, x: float) -> float:\n"
                  "    return total_joules + per_frame_mj(x)\n")
        assert hits(source, "UD101") == 1

    def test_interprocedural_matching_dim_clean(self):
        source = ("def per_frame_mj(x: float) -> float:\n"
                  "    frame_mj = 2.0 * x\n"
                  "    return frame_mj\n"
                  "def g(total_mj: float, x: float) -> float:\n"
                  "    return total_mj + per_frame_mj(x)\n")
        assert hits(source, "UD101") == 0

    def test_ambiguous_public_parameter_fires(self):
        assert hits("def schedule(power: float) -> float:\n"
                    "    return power\n", "UD103") == 1

    def test_docstring_unit_mention_satisfies_ud103(self):
        assert hits('def schedule(power: float) -> float:\n'
                    '    """Plan against ``power`` in watts."""\n'
                    '    return power\n', "UD103") == 0

    def test_private_function_exempt_from_ud103(self):
        assert hits("def _schedule(power: float) -> float:\n"
                    "    return power\n", "UD103") == 0

    def test_scale_suffixed_parameter_not_ambiguous(self):
        assert hits("def schedule(power_mw: float) -> float:\n"
                    "    return power_mw\n", "UD103") == 0

    def test_unknown_dimensions_stay_silent(self):
        # No claims anywhere: inference must not guess.
        assert rule_ids("def f(a: float, b: float) -> float:\n"
                        "    return a + b\n") == []


# --------------------------------------------------------------------------
# DT2xx: determinism taint tracking
# --------------------------------------------------------------------------

_SINK_CLASS = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class FooResult:\n"
    "    started: float = 0.0\n"
    "    def to_jsonable(self) -> dict:\n"
    "        return {'started': self.started}\n"
    "    @classmethod\n"
    "    def from_jsonable(cls, data: dict) -> 'FooResult':\n"
    "        return cls(started=data['started'])\n")


class TestTaintTracking:
    def test_direct_source_into_result_fires(self):
        source = ("import time\n" + _SINK_CLASS
                  + "def f() -> FooResult:\n"
                    "    return FooResult(started=time.time())\n")
        assert hits(source, "DT201") == 1

    def test_clean_value_into_result_clean(self):
        source = (_SINK_CLASS
                  + "def f(elapsed: float) -> FooResult:\n"
                    "    return FooResult(started=elapsed)\n")
        assert hits(source, "DT201") == 0

    def test_taint_through_call_chain_fires(self):
        # The source hides two calls away from the sink write.
        source = ("import time\n" + _SINK_CLASS
                  + "def now() -> float:\n"
                    "    return time.time()\n"
                    "def stamp() -> float:\n"
                    "    return now() + 1.0\n"
                    "def f() -> FooResult:\n"
                    "    return FooResult(started=stamp())\n")
        assert hits(source, "DT201") == 1

    def test_taint_into_non_sink_class_clean(self):
        # No to_jsonable — not a serialized result, DT201 stays quiet
        # (D002 still fires on the wall-clock call itself).
        source = ("import time\n"
                  "from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Scratch:\n"
                  "    started: float = 0.0\n"
                  "def f() -> Scratch:\n"
                  "    return Scratch(started=time.time())\n")
        assert hits(source, "DT201") == 0

    def test_environ_read_is_a_source(self):
        source = ("import os\n" + _SINK_CLASS
                  + "def f() -> FooResult:\n"
                    "    return FooResult(started=float("
                    "os.getenv('T', '0')))\n")
        assert hits(source, "DT201") == 1

    def test_set_iteration_float_accumulation_fires(self):
        assert hits("def f(values: list) -> float:\n"
                    "    total = 0.0\n"
                    "    for v in set(values):\n"
                    "        total += v * 2.0\n"
                    "    return total\n", "DT202") == 1

    def test_sorted_set_iteration_clean(self):
        assert hits("def f(values: list) -> float:\n"
                    "    total = 0.0\n"
                    "    for v in sorted(set(values)):\n"
                    "        total += v * 2.0\n"
                    "    return total\n", "DT202") == 0

    def test_int_accumulation_over_set_clean(self):
        # Integer accumulation is exact in any order.
        assert hits("def f(values: list) -> int:\n"
                    "    total = 0\n"
                    "    for v in set(values):\n"
                    "        total += int(v)\n"
                    "    return total\n", "DT202") == 0

    def test_sum_over_set_comprehension_fires(self):
        assert hits("def f(values: list) -> float:\n"
                    "    return sum({v * 0.5 for v in values})\n",
                    "DT202") == 1

    def test_float_merge_accumulation_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Agg:\n"
                  "    total: float = 0.0\n"
                  "    def merge(self, other: 'Agg') -> None:\n"
                  "        self.total += other.total\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'total': self.total}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Agg':\n"
                  "        return cls(total=d['total'])\n")
        assert hits(source, "DT203") == 1

    def test_int_quantized_merge_clean(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Agg:\n"
                  "    q_total: int = 0\n"
                  "    def merge(self, other: 'Agg') -> None:\n"
                  "        self.q_total += other.q_total\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'q_total': self.q_total}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Agg':\n"
                  "        return cls(q_total=d['q_total'])\n")
        assert hits(source, "DT203") == 0

    def test_no_merge_method_is_not_an_aggregate(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Tally:\n"
                  "    total: float = 0.0\n"
                  "    def add(self, x: float) -> None:\n"
                  "        self.total += x\n")
        assert hits(source, "DT203") == 0


# --------------------------------------------------------------------------
# RT3xx: round-trip completeness
# --------------------------------------------------------------------------


class TestRoundTripCompleteness:
    def test_unserialized_field_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    b: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'a': self.a}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(a=d['a'], b=d.get('b', 0.0))\n")
        assert hits(source, "RT301") == 1

    def test_unrestored_field_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    b: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'a': self.a, 'b': self.b}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(a=d['a'])\n")
        assert hits(source, "RT302") == 1

    def test_complete_pair_clean(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    b: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'a': self.a, 'b': self.b}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(a=d['a'], b=d.get('b', 0.0))\n")
        assert rule_ids(source) == []

    def test_fields_loop_idiom_covers_everything(self):
        source = ("from dataclasses import dataclass, fields\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    b: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {f.name: getattr(self, f.name)"
                  " for f in fields(self)}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(**{f.name: d[f.name]"
                  " for f in fields(cls)})\n")
        assert rule_ids(source) == []

    def test_stale_key_read_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {'a': self.a}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(a=d.get('legacy_a', 0.0))\n")
        assert hits(source, "RT303") == 1

    def test_non_dataclass_pair_skipped(self):
        source = ("class Thing:\n"
                  "    def __init__(self) -> None:\n"
                  "        self.a = 0.0\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls()\n")
        assert hits(source, "RT301") == 0

    def test_suppression_applies_to_project_rules(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Thing:\n"
                  "    a: float = 0.0\n"
                  "    b: float = 0.0\n"
                  "    def to_jsonable(self) -> dict:"
                  "  # repro-lint: disable=RT301 b is derived on load\n"
                  "        return {'a': self.a}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
                  "        return cls(a=d['a'], b=d.get('b', 0.0))\n")
        assert hits(source, "RT301") == 0


# --------------------------------------------------------------------------
# Engine growth: registry scopes/severities, SARIF, cache, parallel
# --------------------------------------------------------------------------


class TestRegistryGrowth:
    def test_new_rule_ids_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert {"UD101", "UD102", "UD103",
                "DT201", "DT202", "DT203",
                "RT301", "RT302", "RT303"} <= ids

    def test_scopes(self):
        assert get_rule("D001").scope == "file"
        assert get_rule("UD101").scope == "project"
        assert get_rule("DT201").scope == "project"
        assert get_rule("RT301").scope == "project"

    def test_severity_tiers(self):
        assert get_rule("UD101").severity == "error"
        assert get_rule("UD103").severity == "warning"
        assert get_rule("RT303").severity == "warning"

    def test_every_rule_has_valid_severity(self):
        assert all(rule.severity in ("error", "warning")
                   for rule in all_rules())


class TestSarifExport:
    def _report(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        return lint_paths([str(bad)])

    def test_sarif_shape(self, tmp_path):
        sarif = report_to_sarif(self._report(tmp_path))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_index = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "UD101" in rule_index and "D001" in rule_index
        assert rule_index["UD103"]["defaultConfiguration"]["level"] \
            == "warning"
        result = run["results"][0]
        assert result["ruleId"] == "D001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_cli_sarif_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        out = tmp_path / "report.sarif"
        code = main(["lint", str(bad), "--sarif", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["runs"][0]["results"][0]["ruleId"] == "D002"

    def test_cli_format_sarif(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("X = 1\n")
        assert main(["lint", str(good), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"


def _violation_key(violation):
    return (violation.path, violation.line, violation.col,
            violation.rule_id, violation.message, violation.context)


class TestIncrementalCache:
    def _tree(self, tmp_path, files):
        root = tmp_path / "proj"
        root.mkdir(exist_ok=True)
        for name, text in files.items():
            (root / name).write_text(text)
        return root

    def test_warm_run_identical_and_cached(self, tmp_path):
        root = self._tree(tmp_path, {
            "a.py": "import time\nt = time.time()\n",
            "b.py": "def total_ms(elapsed_seconds: float) -> float:\n"
                    "    return elapsed_seconds\n",
        })
        cache = tmp_path / "cache.json"
        cold = lint_paths([str(root)], cache_path=str(cache))
        warm = lint_paths([str(root)], cache_path=str(cache))
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert [_violation_key(v) for v in cold.violations] \
            == [_violation_key(v) for v in warm.violations]
        assert len(cold.violations) == 2  # D002 + UD102

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = self._tree(tmp_path, {"a.py": "X = 1\n", "b.py": "Y = 2\n"})
        cache = tmp_path / "cache.json"
        lint_paths([str(root)], cache_path=str(cache))
        (root / "a.py").write_text("import time\nt = time.time()\n")
        report = lint_paths([str(root)], cache_path=str(cache))
        assert report.cache_hits == 1 and report.cache_misses == 1
        assert [v.rule_id for v in report.violations] == ["D002"]

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        root = self._tree(tmp_path, {"a.py": "X = 1\n"})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_paths([str(root)], cache_path=str(cache))
        assert report.ok and report.cache_misses == 1

    def test_cache_is_select_independent(self, tmp_path):
        # A run with --select must not poison the cache for a full run.
        root = self._tree(tmp_path, {
            "a.py": "import time\nt = time.time()\n"
                    "def total_ms(elapsed_seconds: float) -> float:\n"
                    "    return elapsed_seconds\n"})
        cache = tmp_path / "cache.json"
        narrow = lint_paths([str(root)], select=["D002"],
                            cache_path=str(cache))
        assert [v.rule_id for v in narrow.violations] == ["D002"]
        full = lint_paths([str(root)], cache_path=str(cache))
        assert full.cache_hits == 1
        assert sorted(v.rule_id for v in full.violations) \
            == ["D002", "UD102"]

    def test_config_hash_invalidation(self, tmp_path):
        root = self._tree(tmp_path, {"a.py": "X = 1\n"})
        cache_file = tmp_path / "cache.json"
        lint_paths([str(root)], cache_path=str(cache_file))
        payload = json.loads(cache_file.read_text())
        assert payload["config"] == config_hash()
        payload["config"] = "stale"
        cache_file.write_text(json.dumps(payload))
        report = lint_paths([str(root)], cache_path=str(cache_file))
        assert report.cache_misses == 1  # stale config = cold run

    def test_parallel_jobs_identical_findings(self, tmp_path):
        root = self._tree(tmp_path, {
            "a.py": "import time\nt = time.time()\n",
            "b.py": "def total_ms(elapsed_seconds: float) -> float:\n"
                    "    return elapsed_seconds\n",
            "c.py": "X = 1\n",
        })
        serial = lint_paths([str(root)])
        parallel = lint_paths([str(root)], jobs=2)
        assert [_violation_key(v) for v in serial.violations] \
            == [_violation_key(v) for v in parallel.violations]

    def test_timing_line_present(self, tmp_path):
        root = self._tree(tmp_path, {"a.py": "X = 1\n"})
        report = lint_paths([str(root)])
        assert report.elapsed_seconds > 0.0
        assert "analysis time:" in report.render_text()

    def test_report_jsonable_round_trip(self, tmp_path):
        from repro.lint import LintReport

        root = self._tree(tmp_path, {
            "a.py": "import time\nt = time.time()\n"})
        cache = tmp_path / "cache.json"
        report = lint_paths([str(root)], cache_path=str(cache))
        clone = LintReport.from_jsonable(
            json.loads(json.dumps(report.to_jsonable())))
        assert clone.files_checked == report.files_checked
        assert clone.elapsed_seconds == report.elapsed_seconds
        assert clone.cache_hits == report.cache_hits
        assert clone.cache_misses == report.cache_misses
        assert [_violation_key(v) for v in clone.violations] \
            == [_violation_key(v) for v in report.violations]


#: Statement templates for the hypothesis property: a mix of clean and
#: violating module bodies exercising file *and* project rules.
_SNIPPETS = [
    "X = 1\n",
    "import time\nt = time.time()\n",
    "import numpy as np\nrng = np.random.default_rng()\n",
    "import numpy as np\nrng = np.random.default_rng(7)\n",
    "def total_ms(elapsed_seconds: float) -> float:\n"
    "    return elapsed_seconds\n",
    "from repro.units import to_ms\n"
    "def span_ms(elapsed_seconds: float) -> float:\n"
    "    return to_ms(elapsed_seconds)\n",
    "def f(values: list) -> float:\n"
    "    total = 0.0\n"
    "    for v in set(values):\n"
    "        total += v * 2.0\n"
    "    return total\n",
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class Thing:\n"
    "    a: float = 0.0\n"
    "    b: float = 0.0\n"
    "    def to_jsonable(self) -> dict:\n"
    "        return {'a': self.a}\n"
    "    @classmethod\n"
    "    def from_jsonable(cls, d: dict) -> 'Thing':\n"
    "        return cls(a=d['a'])\n",
]


class TestIncrementalProperty:
    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.sampled_from(range(len(_SNIPPETS))),
                    min_size=1, max_size=4),
           st.lists(st.sampled_from(range(len(_SNIPPETS))),
                    min_size=0, max_size=4))
    def test_incremental_equals_cold(self, tmp_path_factory,
                                     first, second):
        """Cold run == warm run == warm run after edits, always."""
        tmp_path = tmp_path_factory.mktemp("lintprop")
        root = tmp_path / "proj"
        root.mkdir()
        for index, pick in enumerate(first):
            (root / f"m{index}.py").write_text(_SNIPPETS[pick])
        cache = tmp_path / "cache.json"

        cold = lint_paths([str(root)])
        warm_first = lint_paths([str(root)], cache_path=str(cache))
        warm_again = lint_paths([str(root)], cache_path=str(cache))
        expected = [_violation_key(v) for v in cold.violations]
        assert [_violation_key(v) for v in warm_first.violations] \
            == expected
        assert [_violation_key(v) for v in warm_again.violations] \
            == expected
        assert warm_again.cache_hits == len(first)

        # Mutate some files, then demand the warm run still matches a
        # from-scratch run exactly.
        for index, pick in enumerate(second):
            (root / f"m{index}.py").write_text(_SNIPPETS[pick])
        cold_after = lint_paths([str(root)])
        warm_after = lint_paths([str(root)], cache_path=str(cache))
        assert [_violation_key(v) for v in warm_after.violations] \
            == [_violation_key(v) for v in cold_after.violations]


# --------------------------------------------------------------------------
# Baseline migration for the new rule ids
# --------------------------------------------------------------------------


class TestBaselineMigration:
    def test_baseline_absorbs_project_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def total_ms(elapsed_seconds: float) -> float:\n"
                       "    return elapsed_seconds\n")
        first = lint_paths([str(bad)])
        assert [v.rule_id for v in first.violations] == ["UD102"]
        baseline = Baseline.from_violations(first.violations)
        again = lint_paths([str(bad)], baseline=baseline)
        assert again.ok and again.baselined == 1

    def test_baseline_round_trip_with_new_ids(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n"
                       "def total_ms(elapsed_seconds: float) -> float:\n"
                       "    t = time.time()\n"
                       "    return elapsed_seconds + t\n")
        report = lint_paths([str(bad)])
        ids = sorted(v.rule_id for v in report.violations)
        assert "UD102" in ids and "D002" in ids
        path = tmp_path / "baseline.json"
        write_baseline(Baseline.from_violations(report.violations),
                       str(path))
        reloaded = load_baseline(str(path))
        assert lint_paths([str(bad)], baseline=reloaded).ok

    def test_baseline_dies_with_the_code(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def total_ms(elapsed_seconds: float) -> float:\n"
                       "    return elapsed_seconds\n")
        baseline = Baseline.from_violations(
            lint_paths([str(bad)]).violations)
        bad.write_text("from repro.units import to_ms\n"
                       "def total_ms(elapsed_seconds: float) -> float:\n"
                       "    return to_ms(elapsed_seconds)\n")
        report = lint_paths([str(bad)], baseline=baseline)
        assert report.ok and report.baselined == 0  # nothing to absorb

    def test_fingerprints_of_new_rules_are_stable(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def total_ms(elapsed_seconds: float) -> float:\n"
                       "    return elapsed_seconds\n")
        violation = lint_paths([str(bad)]).violations[0]
        path, rule_id, context = violation.fingerprint()
        assert rule_id == "UD102"
        assert context == "return elapsed_seconds"


class TestAnalyzeFileApi:
    def test_entry_is_json_serializable(self):
        entry = analyze_file("import time\nt = time.time()\n", FAKE)
        clone = json.loads(json.dumps(entry))
        assert clone["summary"]["module"] == "repro.fake_module"
        assert clone["violations"][0]["rule"] == "D002"

    def test_fingerprint_is_content_keyed(self):
        assert file_fingerprint("a = 1\n") != file_fingerprint("a = 2\n")
        assert file_fingerprint("a = 1\n") == file_fingerprint("a = 1\n")

    def test_cache_round_trip(self, tmp_path):
        cache = LintCache()
        cache.put("x.py", "fp", {"violations": [], "suppressed": 0,
                                 "summary": {}, "suppressions": {}})
        target = tmp_path / "cache.json"
        cache.save(str(target))
        loaded = LintCache.load(str(target))
        assert loaded.get("x.py", "fp") is not None
        assert loaded.get("x.py", "other") is None
