"""End-to-end pipeline integration tests.

These exercise the full simulate() flow at a small frame count and
assert the paper's qualitative behaviours hold on every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate, workload
from repro.config import (
    BASELINE,
    BATCHING,
    GAB,
    MAB,
    RACE_TO_SLEEP,
    RACING,
    SimulationConfig,
    VideoConfig,
)
from repro.decoder.power import PowerState

FRAMES = 64


@pytest.fixture(scope="module")
def v8_runs():
    schemes = (BASELINE, BATCHING, RACING, RACE_TO_SLEEP, MAB, GAB)
    return {s.name: simulate(workload("V8"), s, n_frames=FRAMES, seed=5)
            for s in schemes}


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = simulate(workload("V5"), BASELINE, n_frames=24, seed=9)
        b = simulate(workload("V5"), BASELINE, n_frames=24, seed=9)
        assert a.energy.total == b.energy.total
        assert a.drops == b.drops
        assert (a.timeline.decode_time == b.timeline.decode_time).all()

    def test_different_seed_different_traffic(self):
        a = simulate(workload("V5"), BASELINE, n_frames=24, seed=1)
        b = simulate(workload("V5"), BASELINE, n_frames=24, seed=2)
        assert a.energy.total != b.energy.total


class TestEnergyAccounting:
    def test_breakdown_sums(self, v8_runs):
        for result in v8_runs.values():
            total = sum(result.energy.as_dict().values())
            assert total == pytest.approx(result.energy.total)
            assert result.energy.total > 0

    def test_residency_sums_to_one(self, v8_runs):
        for result in v8_runs.values():
            assert sum(result.residency.values()) == pytest.approx(1.0,
                                                                   abs=1e-6)

    def test_mach_overhead_only_for_mach_schemes(self, v8_runs):
        assert v8_runs["Baseline"].energy.mach_overhead == 0.0
        assert v8_runs["Race-to-Sleep"].energy.mach_overhead == 0.0
        assert v8_runs["MAB"].energy.mach_overhead > 0.0
        assert v8_runs["GAB"].energy.mach_overhead > 0.0

    def test_timeline_energy_matches_tracker(self, v8_runs):
        for result in v8_runs.values():
            timeline_total = result.timeline.total_energy.sum()
            tracker_total = (result.energy.vd_total)
            assert timeline_total == pytest.approx(tracker_total, rel=1e-6)


class TestPaperBehaviours:
    def test_rts_eliminates_drops(self, v8_runs):
        assert v8_runs["Race-to-Sleep"].drops == 0
        assert v8_runs["MAB"].drops == 0
        assert v8_runs["GAB"].drops == 0

    def test_rts_deep_sleep_dominates_baseline(self, v8_runs):
        assert (v8_runs["Race-to-Sleep"].residency[PowerState.S3]
                > 3 * v8_runs["Baseline"].residency[PowerState.S3])

    def test_batching_cuts_transitions(self, v8_runs):
        assert (v8_runs["Batching"].transitions
                < v8_runs["Baseline"].transitions / 4)

    def test_racing_halves_decode_time(self, v8_runs):
        base = v8_runs["Baseline"].timeline.decode_time.mean()
        race = v8_runs["Racing"].timeline.decode_time.mean()
        assert race == pytest.approx(base / 2, rel=0.01)

    def test_gab_saves_write_traffic(self, v8_runs):
        assert v8_runs["GAB"].write_savings > v8_runs["MAB"].write_savings
        assert v8_runs["GAB"].write_savings > 0.2

    def test_gab_saves_read_traffic(self, v8_runs):
        assert v8_runs["GAB"].read_savings > 0.15

    def test_gab_cheapest_overall(self, v8_runs):
        energies = {name: r.energy.total for name, r in v8_runs.items()}
        assert min(energies, key=energies.get) == "GAB"

    def test_racing_costs_energy_alone(self, v8_runs):
        assert (v8_runs["Racing"].energy.total
                > v8_runs["Baseline"].energy.total)

    def test_batching_needs_more_framebuffer(self, v8_runs):
        assert (v8_runs["Batching"].peak_footprint_native_mb
                > 2 * v8_runs["Baseline"].peak_footprint_native_mb)

    def test_mach_schemes_write_fewer_bytes(self, v8_runs):
        assert v8_runs["GAB"].write_bytes < v8_runs["Baseline"].write_bytes
        assert (v8_runs["Baseline"].write_bytes
                == v8_runs["Baseline"].raw_write_bytes)


class TestDisplaySemantics:
    def test_baseline_dropped_frames_marked(self):
        result = simulate(workload("V3"), BASELINE, n_frames=96, seed=11)
        assert result.drops == int(result.timeline.dropped.sum())

    def test_deadlines_are_one_refresh_after_slot(self):
        result = simulate(workload("V5"), BASELINE, n_frames=24, seed=0)
        interval = 1 / 60.0
        expected = (np.arange(24) + 1) * interval
        assert np.allclose(result.timeline.deadline, expected)

    def test_all_frames_decoded(self, v8_runs):
        for result in v8_runs.values():
            assert (result.timeline.decode_time > 0).all()
            assert (result.timeline.finish > 0).all()


class TestConfigurationVariants:
    def test_smaller_resolution_runs(self):
        cfg = SimulationConfig(video=VideoConfig(width=96, height=48))
        result = simulate(workload("V8"), GAB, n_frames=16, config=cfg,
                          seed=1)
        assert result.n_frames == 16
        assert result.energy.total > 0

    def test_unbounded_mach_beats_lru(self):
        lru = simulate(workload("V8"), GAB, n_frames=32, seed=2)
        oracle = simulate(workload("V8"), GAB, n_frames=32, seed=2,
                          unbounded_mach=True)
        assert oracle.write_savings >= lru.write_savings

    def test_ablations_cost_reads(self):
        full = simulate(workload("V8"), GAB, n_frames=32, seed=2)
        naive = simulate(workload("V8"), GAB, n_frames=32, seed=2,
                         use_display_cache=False, use_mach_buffer=False)
        assert naive.read_stats.mem_reads > full.read_stats.mem_reads

    def test_eager_buffer_policy_runs(self):
        result = simulate(workload("V8"), GAB, n_frames=24, seed=2,
                          buffer_policy="eager")
        assert result.read_stats.prefetch_reads > 0
