"""Tests for repro.lint — the AST-based invariant checker.

Every rule family gets a good/bad fixture pair, the suppression and
baseline mechanisms get round-trip tests, and — the point of the whole
exercise — the real source tree is linted with an **empty** baseline,
so the tier-1 suite fails the moment a violation lands.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import (
    Baseline,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Path handed to lint_source so fixtures count as in-package modules.
FAKE = "src/repro/fake_module.py"


def rule_ids(source: str, path: str = FAKE) -> list:
    return sorted({v.rule_id for v in lint_source(source, path=path)})


def hits(source: str, rule_id: str, path: str = FAKE) -> int:
    return sum(1 for v in lint_source(source, path=path)
               if v.rule_id == rule_id)


class TestDeterminismRules:
    def test_unseeded_default_rng_fires(self):
        assert hits("import numpy as np\nrng = np.random.default_rng()\n",
                    "D001") == 1

    def test_seeded_default_rng_clean(self):
        assert hits("import numpy as np\n"
                    "rng = np.random.default_rng(7)\n", "D001") == 0
        assert hits("import numpy as np\n"
                    "rng = np.random.default_rng(seed=7)\n", "D001") == 0

    def test_unseeded_stdlib_random_fires(self):
        assert hits("import random\nrng = random.Random()\n", "D001") == 1

    def test_from_import_is_resolved(self):
        assert hits("from numpy.random import default_rng\n"
                    "rng = default_rng()\n", "D001") == 1

    def test_wall_clock_fires(self):
        assert hits("import time\nnow = time.time()\n", "D002") == 1
        assert hits("import time\nnow = time.perf_counter()\n", "D002") == 1
        assert hits("from datetime import datetime\n"
                    "stamp = datetime.now()\n", "D002") == 1

    def test_model_time_clean(self):
        assert hits("def advance(clock: float, dt: float) -> float:\n"
                    "    return clock + dt\n", "D002") == 0

    def test_global_rng_state_fires(self):
        assert hits("import numpy as np\nnp.random.seed(0)\n", "D003") == 1
        assert hits("import numpy as np\nx = np.random.rand(4)\n",
                    "D003") == 1
        assert hits("import random\nrandom.seed(3)\n", "D003") == 1

    def test_generator_methods_clean(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(1)\n"
                  "x = rng.integers(10)\n")
        assert hits(source, "D003") == 0


class TestUnitsRules:
    def test_magic_factor_fires(self):
        assert hits("def f(ms: float) -> float:\n"
                    "    return ms * 1e-3\n", "U001") == 1
        assert hits("def f(j: float) -> float:\n"
                    "    return j / 1e6\n", "U001") == 1
        assert hits("CAP = 64 * 1024 * 1024\n", "U001") >= 1
        assert hits("CAP = 16 * 1024 ** 2\n", "U001") >= 1

    def test_named_constants_clean(self):
        source = ("from repro.units import MS, MIB\n"
                  "def f(ms: float) -> float:\n"
                  "    return ms * MS\n"
                  "CAP = 64 * MIB\n")
        assert hits(source, "U001") == 0

    def test_epsilon_comparisons_clean(self):
        # Tolerances are additive, not multiplicative — not conversions.
        assert hits("def full(level: float, cap: float) -> bool:\n"
                    "    return level > cap + 1e-9\n", "U001") == 0

    def test_units_module_itself_exempt(self):
        assert hits("MS = 1e-3\nX = 2 * 1e-3\n", "U001",
                    path="src/repro/units.py") == 0

    def test_undocumented_quantity_field_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Config:\n"
                  "    tail_energy: float = 0.5\n")
        assert hits(source, "U002") == 1

    def test_unit_comment_satisfies(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Config:\n"
                  "    tail_energy: float = 0.5  # J per tail\n")
        assert hits(source, "U002") == 0

    def test_units_constant_default_satisfies(self):
        source = ("from dataclasses import dataclass\n"
                  "from repro.units import MW\n"
                  "@dataclass\n"
                  "class Config:\n"
                  "    idle_power: float = 12 * MW\n")
        assert hits(source, "U002") == 0

    def test_structured_field_exempt(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Result:\n"
                  "    energy: EnergyBreakdown\n")
        assert hits(source, "U002") == 0


class TestErrorPolicyRules:
    def test_bare_except_fires(self):
        assert hits("try:\n    x = 1\nexcept:\n    pass\n", "E001") == 1

    def test_broad_except_fires(self):
        assert hits("try:\n    x = 1\nexcept Exception:\n    pass\n",
                    "E002") == 1

    def test_typed_except_clean(self):
        assert rule_ids("from repro.errors import ReproError\n"
                        "try:\n    x = 1\n"
                        "except ReproError:\n    pass\n") == []

    def test_raise_runtime_error_fires(self):
        assert hits("def f() -> None:\n"
                    "    raise RuntimeError('nope')\n", "E003") == 1

    def test_raise_hierarchy_and_builtins_clean(self):
        source = ("from repro.errors import ConfigError\n"
                  "def f(x: int) -> None:\n"
                  "    if x < 0:\n"
                  "        raise ValueError('negative')\n"
                  "    raise ConfigError('bad')\n")
        assert hits(source, "E003") == 0

    def test_reraise_clean(self):
        source = ("def f() -> None:\n"
                  "    try:\n        g()\n"
                  "    except ValueError as exc:\n"
                  "        raise\n")
        assert hits(source, "E003") == 0


class TestApiContractRules:
    def test_unannotated_public_function_fires(self):
        assert hits("def runner(jobs):\n    return jobs\n", "A001") >= 1

    def test_annotated_public_function_clean(self):
        assert hits("def runner(jobs: list) -> list:\n    return jobs\n",
                    "A001") == 0

    def test_private_and_nested_functions_exempt(self):
        source = ("def _helper(x):\n    return x\n"
                  "def outer() -> None:\n"
                  "    def inner(y):\n        return y\n")
        assert hits(source, "A001") == 0

    def test_self_needs_no_annotation(self):
        source = ("class Thing:\n"
                  "    def value(self) -> int:\n        return 1\n")
        assert hits(source, "A001") == 0

    def test_lone_to_jsonable_fires(self):
        source = ("class Result:\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {}\n")
        assert hits(source, "A002") == 1

    def test_paired_jsonable_clean(self):
        source = ("class Result:\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {}\n"
                  "    @classmethod\n"
                  "    def from_jsonable(cls, data: dict) -> 'Result':\n"
                  "        return cls()\n")
        assert hits(source, "A002") == 0

    def test_from_jsonable_must_be_classmethod(self):
        source = ("class Result:\n"
                  "    def to_jsonable(self) -> dict:\n"
                  "        return {}\n"
                  "    def from_jsonable(self, data: dict) -> 'Result':\n"
                  "        return self\n")
        assert hits(source, "A002") == 1


class TestSuppressions:
    BAD_LINE = "import numpy as np\nrng = np.random.default_rng()"

    def test_inline_suppression_absorbs(self):
        source = (self.BAD_LINE
                  + "  # repro-lint: disable=D001 docs example\n")
        assert rule_ids(source) == []

    def test_next_line_suppression_absorbs(self):
        source = ("import numpy as np\n"
                  "# repro-lint: disable-next-line=D001 docs example\n"
                  "rng = np.random.default_rng()\n")
        assert rule_ids(source) == []

    def test_file_suppression_absorbs(self):
        source = ("# repro-lint: disable-file=D001 fixture module\n"
                  + self.BAD_LINE + "\n"
                  + "rng2 = np.random.default_rng()\n")
        assert rule_ids(source) == []

    def test_unjustified_suppression_is_a_violation(self):
        source = self.BAD_LINE + "  # repro-lint: disable=D001\n"
        assert rule_ids(source) == ["S001"]

    def test_unknown_rule_in_suppression_is_a_violation(self):
        source = (self.BAD_LINE
                  + "  # repro-lint: disable=Z999 because reasons\n")
        ids = rule_ids(source)
        assert "S002" in ids and "D001" in ids  # Z999 absorbs nothing

    def test_wrong_rule_does_not_absorb(self):
        source = (self.BAD_LINE
                  + "  # repro-lint: disable=E001 wrong family\n")
        assert "D001" in rule_ids(source)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        report = lint_paths([str(bad)])
        assert not report.ok
        baseline_path = tmp_path / "baseline.json"
        write_baseline(Baseline.from_violations(report.violations),
                       str(baseline_path))
        loaded = load_baseline(str(baseline_path))
        assert len(loaded) == len(report.violations)
        again = lint_paths([str(bad)], baseline=loaded)
        assert again.ok
        assert again.baselined == len(report.violations)

    def test_baseline_survives_line_drift_but_not_code_change(self,
                                                              tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n")
        baseline = Baseline.from_violations(
            lint_paths([str(bad)]).violations)
        # Unrelated lines move the finding; the fingerprint still holds.
        bad.write_text("import numpy as np\n\n\n"
                       "rng = np.random.default_rng()\n")
        assert lint_paths([str(bad)], baseline=baseline).ok
        # A second, new violation is *not* absorbed.
        bad.write_text("import numpy as np\n"
                       "rng = np.random.default_rng()\n"
                       "rng2 = np.random.default_rng()\n")
        report = lint_paths([str(bad)], baseline=baseline)
        assert len(report.violations) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert len(load_baseline(str(tmp_path / "absent.json"))) == 0

    def test_bad_baseline_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(LintError):
            load_baseline(str(path))


class TestEngine:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n")

    def test_malformed_directive_raises(self):
        with pytest.raises(LintError):
            lint_source("x = 1  # repro-lint: disable\n")

    def test_select_restricts_rules(self):
        source = ("import numpy as np\n"
                  "def f(jobs):\n"
                  "    return np.random.default_rng()\n")
        only_d = lint_source(source, path=FAKE, select=["D001"])
        assert {v.rule_id for v in only_d} == {"D001"}

    def test_rule_catalogue_is_complete(self):
        ids = {rule.id for rule in all_rules()}
        assert {"D001", "D002", "D003", "U001", "U002",
                "E001", "E002", "E003", "A001", "A002",
                "S001", "S002"} <= ids


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "D001" in out and "unseeded-rng" in out

    def test_lint_bad_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "D002" in capsys.readouterr().out

    def test_json_format_and_output_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        report_path = tmp_path / "report.json"
        assert main(["lint", str(bad), "--format", "json",
                     "--output", str(report_path)]) == 1
        capsys.readouterr()
        data = json.loads(report_path.read_text())
        assert data["counts"] == {"D002": 1}

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nnow = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["lint", str(bad),
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()


class TestWholeTree:
    """The acceptance criterion: the real tree, an empty baseline."""

    def test_source_tree_is_clean(self):
        report = lint_paths([str(REPO_SRC)], baseline=Baseline.empty())
        assert report.files_checked > 80
        assert report.ok, "\n" + report.render_text()
