"""Tests for CRC implementations and digest schemes."""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hashing import (
    available_schemes,
    crc16,
    crc16_blocks,
    crc32,
    crc32_bitwise,
    crc32_blocks,
    get_scheme,
)
from repro.hashing.digest import CollisionTracker


class TestCrc32:
    def test_empty_input(self):
        assert crc32(b"") == zlib.crc32(b"") == 0

    def test_known_vector(self):
        # The classic CRC-32 check value for "123456789".
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        for data in (b"a", b"hello", bytes(range(256)), b"\x00" * 100):
            assert crc32(data) == zlib.crc32(data)

    def test_bitwise_matches_table_driven(self):
        for data in (b"", b"x", b"macroblock", bytes(range(64))):
            assert crc32_bitwise(data) == crc32(data)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_zlib(self, data: bytes):
        assert crc32(data) == zlib.crc32(data)

    def test_vectorized_matches_scalar(self, random_blocks):
        vectorized = crc32_blocks(random_blocks)
        for i in range(len(random_blocks)):
            assert int(vectorized[i]) == zlib.crc32(
                random_blocks[i].tobytes())

    def test_vectorized_rejects_non_uint8(self):
        with pytest.raises(TypeError):
            crc32_blocks(np.zeros((2, 4), dtype=np.int32))

    def test_vectorized_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            crc32_blocks(np.zeros(8, dtype=np.uint8))


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/X-25 (reflected CCITT, init/xorout 0xFFFF) check value.
        assert crc16(b"123456789") == 0x906E

    def test_vectorized_matches_scalar(self, random_blocks):
        vectorized = crc16_blocks(random_blocks)
        for i in range(0, len(random_blocks), 7):
            assert int(vectorized[i]) == crc16(random_blocks[i].tobytes())

    def test_distinct_from_crc32(self):
        data = b"payload"
        assert crc16(data) != (crc32(data) & 0xFFFF)


class TestDigestSchemes:
    def test_available_schemes(self):
        names = available_schemes()
        for expected in ("crc32", "crc48", "md5", "sha1", "weak-sum"):
            assert expected in names

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigError):
            get_scheme("blake3")

    def test_crc48_composition(self, random_blocks):
        deep = get_scheme("crc48").digest_blocks(random_blocks)
        low = crc32_blocks(random_blocks)
        high = crc16_blocks(random_blocks)
        assert (deep & np.uint64(0xFFFFFFFF) == low.astype(np.uint64)).all()
        assert ((deep >> np.uint64(32)) == high.astype(np.uint64)).all()

    def test_md5_sha1_stable_and_distinct(self, random_blocks):
        md5 = get_scheme("md5").digest_blocks(random_blocks[:10])
        sha1 = get_scheme("sha1").digest_blocks(random_blocks[:10])
        assert (md5 == get_scheme("md5").digest_blocks(
            random_blocks[:10])).all()
        assert (md5 != sha1).any()

    def test_weak_sum_collides_on_permutation(self):
        scheme = get_scheme("weak-sum")
        a = np.arange(48, dtype=np.uint8).reshape(1, -1)
        b = a[:, ::-1].copy()
        assert scheme.digest_one(a[0]) == scheme.digest_one(b[0])
        assert get_scheme("crc32").digest_one(a[0]) != get_scheme(
            "crc32").digest_one(b[0])

    def test_digest_one_matches_batch(self, random_blocks):
        scheme = get_scheme("crc32")
        batch = scheme.digest_blocks(random_blocks[:5])
        for i in range(5):
            assert scheme.digest_one(random_blocks[i]) == int(batch[i])


class TestCollisionTracker:
    def test_no_collision_for_identical_content(self):
        tracker = CollisionTracker()
        assert not tracker.observe(1, b"same")
        assert not tracker.observe(1, b"same")
        assert tracker.collisions == 0

    def test_collision_detected(self):
        tracker = CollisionTracker()
        tracker.observe(1, b"first")
        assert tracker.observe(1, b"other")
        assert tracker.collisions == 1
        assert tracker.collision_rate == pytest.approx(0.5)

    def test_observe_frame(self, random_blocks):
        tracker = CollisionTracker()
        digests = np.zeros(len(random_blocks), dtype=np.uint64)  # all collide
        found = tracker.observe_frame(digests, random_blocks)
        # The first block sets the representative; all others collide
        # (random 48-byte blocks are unique with overwhelming probability).
        assert found == len(random_blocks) - 1
