"""Tests for the block codec substrate (DCT, quant, entropy, motion,
encoder/decoder round trips)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.video import FrameType
from repro.video.codec import Decoder, Encoder, diamond_search, motion_compensate
from repro.video.codec.dct import dct2, dct_matrix, idct2
from repro.video.codec.entropy import (
    BitReader,
    BitWriter,
    decode_coefficients,
    encode_coefficients,
)
from repro.video.codec.quant import dequantize, quant_table, quantize
from repro.video.codec.zigzag import unzigzag, zigzag, zigzag_order


class TestDct:
    def test_orthonormal_basis(self):
        basis = dct_matrix(8)
        assert np.allclose(basis @ basis.T, np.eye(8), atol=1e-12)

    def test_roundtrip(self, rng):
        block = rng.normal(size=(8, 8))
        assert np.allclose(idct2(dct2(block)), block, atol=1e-10)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((8, 8), 10.0)
        coeffs = dct2(block)
        assert coeffs[0, 0] == pytest.approx(80.0)  # 8 * mean
        assert np.allclose(coeffs.ravel()[1:], 0.0, atol=1e-12)

    def test_batched(self, rng):
        blocks = rng.normal(size=(5, 8, 8))
        batched = dct2(blocks)
        for i in range(5):
            assert np.allclose(batched[i], dct2(blocks[i]))


class TestQuant:
    def test_quality_scaling_monotonic(self):
        steps = [quant_table(q).mean() for q in (10, 50, 90)]
        assert steps[0] > steps[1] > steps[2]

    def test_quality_50_is_base_table(self):
        from repro.video.codec.quant import JPEG_LUMA_QUANT
        assert (quant_table(50) == JPEG_LUMA_QUANT).all()

    def test_invalid_quality(self):
        with pytest.raises(CodecError):
            quant_table(0)

    def test_quantize_dequantize(self, rng):
        table = quant_table(60)
        coeffs = rng.normal(scale=100, size=(8, 8))
        levels = quantize(coeffs, table)
        recon = dequantize(levels, table)
        assert np.abs(recon - coeffs).max() <= table.max() / 2 + 1e-9

    def test_resampled_table(self):
        table = quant_table(50, block_size=4)
        assert table.shape == (4, 4)


class TestZigzag:
    def test_order_is_permutation(self):
        order = zigzag_order(8)
        assert sorted(order) == list(range(64))

    def test_known_prefix(self):
        # The canonical JPEG zigzag starts 0, 1, 8, 16, 9, 2.
        assert list(zigzag_order(8)[:6]) == [0, 1, 8, 16, 9, 2]

    def test_roundtrip(self, rng):
        block = rng.integers(-50, 50, size=(8, 8)).astype(np.int32)
        assert (unzigzag(zigzag(block), 8) == block).all()


class TestBitIO:
    def test_bits_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0x1F2, 9)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(9) == 0x1F2

    @given(st.lists(st.integers(0, 10_000), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_ue_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_ue() for _ in values] == values

    @given(st.lists(st.integers(-5_000, 5_000), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_se_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_se(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_se() for _ in values] == values

    def test_ue_rejects_negative(self):
        with pytest.raises(CodecError):
            BitWriter().write_ue(-1)

    def test_exhausted_stream(self):
        reader = BitReader(b"")
        with pytest.raises(CodecError):
            reader.read_bit()

    def test_bit_length(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        assert writer.bit_length == 3


class TestCoefficientCoding:
    @given(st.lists(st.integers(-20, 20), min_size=64, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, coeffs):
        vector = np.asarray(coeffs, dtype=np.int32)
        writer = BitWriter()
        encode_coefficients(writer, vector)
        reader = BitReader(writer.getvalue())
        assert (decode_coefficients(reader, 64) == vector).all()

    def test_sparse_blocks_are_cheap(self):
        dense = np.arange(1, 65, dtype=np.int32)
        sparse = np.zeros(64, dtype=np.int32)
        sparse[0] = 5
        writer_dense, writer_sparse = BitWriter(), BitWriter()
        encode_coefficients(writer_dense, dense)
        encode_coefficients(writer_sparse, sparse)
        assert writer_sparse.bit_length < writer_dense.bit_length / 10


class TestMotion:
    def test_finds_exact_translation(self):
        # A radial blob gives a unimodal SAD surface, which greedy
        # diamond descent follows to the exact optimum (on noise or on
        # periodic patterns it may legitimately stop elsewhere).
        y, x = np.mgrid[0:64, 0:64]
        radial = np.hypot(y - 24.0, x - 28.0)
        reference = np.clip(255 - radial * 6, 0, 255).astype(np.uint8)
        dy, dx = 3, -2
        block = reference[16 + dy:32 + dy, 16 + dx:32 + dx]
        assert diamond_search(reference, block, 16, 16) == (dy, dx)

    def test_zero_motion_for_identical(self, rng):
        reference = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        block = reference[16:32, 16:32]
        assert diamond_search(reference, block, 16, 16) == (0, 0)

    def test_respects_bounds(self, rng):
        reference = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
        block = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        dy, dx = diamond_search(reference, block, 0, 0, search_range=7)
        assert 0 <= dy <= 7 and 0 <= dx <= 7  # cannot go above/left of edge

    def test_compensate_slices(self, rng):
        reference = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
        predictor = motion_compensate(reference, 8, 8, (2, -3), 16)
        assert (predictor == reference[10:26, 5:21]).all()


class TestCodecRoundtrip:
    def _stream(self, rng, n=6, size=(48, 64)):
        base = rng.integers(20, 230, size=size, dtype=np.uint8)
        frames = []
        for i in range(n):
            frames.append(np.roll(base, 3 * i, axis=1))
        return frames

    def test_decoder_matches_encoder_reconstruction(self, rng):
        encoder, decoder = Encoder(quality=70, gop_length=4), Decoder()
        for image in self._stream(rng):
            encoded = encoder.encode_frame(image)
            decoded = decoder.decode_frame(encoded.data)
            assert (decoded == encoder.reference).all()

    def test_gop_cadence(self, rng):
        encoder = Encoder(quality=70, gop_length=3)
        types = [encoder.encode_frame(img).frame_type
                 for img in self._stream(rng, n=7)]
        assert types[0] is FrameType.I
        assert types[3] is FrameType.I
        assert types[1] is FrameType.P

    def test_static_scene_mostly_skips(self, rng):
        encoder = Encoder(quality=70, gop_length=10)
        image = rng.integers(0, 256, size=(48, 48), dtype=np.uint8)
        encoder.encode_frame(image)
        # Re-encoding the decoder's own reconstruction is a perfectly
        # static scene: every macroblock must SKIP.
        second = encoder.encode_frame(encoder.reference)
        assert second.skip_mabs == second.total_mabs

    def test_p_frames_smaller_than_i(self, rng):
        encoder = Encoder(quality=70, gop_length=10)
        frames = self._stream(rng, n=4)
        sizes = [encoder.encode_frame(img) for img in frames]
        assert all(s.bits < sizes[0].bits for s in sizes[1:])

    def test_quality_controls_fidelity(self, rng):
        image = rng.integers(0, 256, size=(48, 48), dtype=np.uint8)
        errors = []
        for quality in (20, 85):
            encoder, decoder = Encoder(quality=quality), Decoder()
            decoded = decoder.decode_frame(encoder.encode_frame(image).data)
            errors.append(
                float(np.abs(decoded.astype(int) - image.astype(int)).mean()))
        assert errors[1] < errors[0]

    def test_rejects_bad_geometry(self):
        with pytest.raises(CodecError):
            Encoder().encode_frame(np.zeros((10, 16), dtype=np.uint8))

    def test_rejects_b_frames(self, rng):
        image = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        with pytest.raises(CodecError):
            Encoder().encode_frame(image, force_type=FrameType.B)

    def test_p_before_i_raises(self):
        decoder = Decoder()
        encoder = Encoder(quality=60)
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        encoder.encode_frame(image)  # I
        p_frame = encoder.encode_frame(image)  # P
        with pytest.raises(CodecError):
            decoder.decode_frame(p_frame.data)
