"""Tests for the generic cache substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    AccessResult,
    CacheStats,
    DirectMappedCache,
    SetAssociativeCache,
    make_policy,
)
from repro.display.display_cache import simulate_direct_mapped
from repro.errors import CacheError


class TestCacheStats:
    def test_rates(self):
        stats = CacheStats()
        stats.record(AccessResult.HIT)
        stats.record(AccessResult.MISS)
        stats.record(AccessResult.MISS)
        assert stats.accesses == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_empty_rates(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_merge(self):
        a = CacheStats(hits=1, misses=2, evictions=3, insertions=4)
        b = CacheStats(hits=10, misses=20, evictions=30, insertions=40)
        merged = a.merge(b)
        assert (merged.hits, merged.misses) == (11, 22)
        assert (merged.evictions, merged.insertions) == (33, 44)


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        policy = make_policy("lru", ways=3)
        for way in (0, 1, 2):
            policy.on_insert(way)
        policy.on_hit(0)  # order now: 0, 2, 1
        assert policy.victim([True] * 3) == 1

    def test_fifo_ignores_hits(self):
        policy = make_policy("fifo", ways=3)
        for way in (0, 1, 2):
            policy.on_insert(way)
        policy.on_hit(0)
        assert policy.victim([True] * 3) == 0

    def test_random_is_seeded(self):
        a = make_policy("random", ways=8, seed=1)
        b = make_policy("random", ways=8, seed=1)
        assert [a.victim([True] * 8) for _ in range(10)] == [
            b.victim([True] * 8) for _ in range(10)]

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            make_policy("plru", ways=4)


class TestSetAssociativeCache:
    def test_requires_power_of_two_sets(self):
        with pytest.raises(CacheError):
            SetAssociativeCache(sets=3, ways=2)

    def test_hit_after_insert(self):
        cache = SetAssociativeCache(sets=4, ways=2)
        cache.insert(42, "value")
        result, value = cache.lookup(42)
        assert result.is_hit
        assert value == "value"

    def test_miss_on_absent(self):
        cache = SetAssociativeCache(sets=4, ways=2)
        result, value = cache.lookup(7)
        assert not result.is_hit
        assert value is None

    def test_lru_eviction_within_set(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.lookup(1)  # make key 1 most recent
        evicted = cache.insert(3, "c")
        assert evicted == (2, "b")
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_update_existing_value_in_place(self):
        cache = SetAssociativeCache(sets=2, ways=2)
        cache.insert(5, "old")
        assert cache.insert(5, "new") is None
        assert cache.peek(5) == "new"
        assert len(cache) == 1

    def test_evicted_key_reconstruction(self):
        cache = SetAssociativeCache(sets=4, ways=1)
        key = 0b10110  # set index 0b10, tag 0b101
        cache.insert(key, "x")
        evicted = cache.insert(key + 4 * 8, "y")  # same set, new tag
        assert evicted is not None
        assert evicted[0] == key

    def test_peek_does_not_touch_stats_or_recency(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.peek(1)  # would save key 1 if it updated recency
        cache.insert(3, "c")
        assert 1 not in cache  # LRU order unchanged by peek

    def test_items_roundtrip(self):
        cache = SetAssociativeCache(sets=8, ways=4)
        expected = {i * 17: i for i in range(20)}
        for key, value in expected.items():
            cache.insert(key, value)
        assert dict(cache.items()) == expected

    def test_capacity_and_len(self):
        cache = SetAssociativeCache(sets=4, ways=4)
        assert cache.capacity == 16
        for i in range(100):
            cache.insert(i, i)
        assert len(cache) == 16

    def test_access_inserts_on_miss(self):
        cache = SetAssociativeCache(sets=2, ways=1)
        assert cache.access(9) is AccessResult.MISS
        assert cache.access(9) is AccessResult.HIT

    def test_clear(self):
        cache = SetAssociativeCache(sets=2, ways=1)
        cache.insert(1, "a")
        cache.clear()
        assert len(cache) == 0

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_resident_set_never_exceeds_capacity(self, keys):
        cache = SetAssociativeCache(sets=4, ways=2)
        for key in keys:
            cache.access(key)
        assert len(cache) <= cache.capacity
        # Every most-recently-accessed key per set must be resident.
        last_per_set = {}
        for key in keys:
            last_per_set[key & 3] = key
        for key in last_per_set.values():
            assert key in cache


class TestDirectMappedCache:
    def test_from_bytes(self):
        cache = DirectMappedCache.from_bytes(16 * 1024, 64)
        assert cache.lines == 256

    def test_conflict_eviction(self):
        cache = DirectMappedCache(4)
        assert not cache.access(0).is_hit
        assert cache.access(0).is_hit
        assert not cache.access(4).is_hit  # same slot, different tag
        assert not cache.access(0).is_hit  # evicted

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CacheError):
            DirectMappedCache(3)


class TestVectorizedDirectMapped:
    def _scalar_reference(self, keys, slots, state=None):
        tags = dict(state or {})
        hits = []
        for key in keys:
            slot = key & (slots - 1)
            hits.append(tags.get(slot) == key)
            tags[slot] = key
        return np.asarray(hits), tags

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_model(self, keys):
        keys = np.asarray(keys, dtype=np.int64)
        hits, state = simulate_direct_mapped(keys, 16)
        expected_hits, expected_state = self._scalar_reference(keys, 16)
        assert (hits == expected_hits).all()
        assert state == expected_state

    def test_carries_state_across_windows(self):
        first = np.asarray([5, 21, 5], dtype=np.int64)
        hits1, state = simulate_direct_mapped(first, 16)
        # Keys 5 and 21 share slot 5 and keep evicting each other.
        assert list(hits1) == [False, False, False]
        assert state == {5: 5}
        hits2, _ = simulate_direct_mapped(
            np.asarray([5, 21], dtype=np.int64), 16, state)
        assert list(hits2) == [True, False]

    def test_empty_window(self):
        hits, state = simulate_direct_mapped(
            np.empty(0, dtype=np.int64), 8, {1: 9})
        assert len(hits) == 0
        assert state == {1: 9}
