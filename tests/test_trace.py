"""Tests for the FrameTrace interchange format."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BASELINE, GAB, simulate, workload
from repro.errors import GeometryError
from repro.video import FrameType, SyntheticVideo
from repro.video.trace import TRACE_VERSION, FrameTrace


@pytest.fixture
def small_trace(video_config):
    frames = SyntheticVideo(video_config, workload("V8"), seed=2,
                            n_frames=8)
    return FrameTrace.from_frames(frames, video_config.width,
                                  video_config.height,
                                  video_config.block_size)


class TestConstruction:
    def test_from_frames(self, small_trace, video_config):
        assert len(small_trace) == 8
        assert small_trace.blocks.shape == (
            8, video_config.blocks_per_frame, video_config.block_bytes)

    def test_from_images(self, rng):
        images = [rng.integers(0, 256, (16, 32, 3), dtype=np.uint8)
                  for _ in range(3)]
        trace = FrameTrace.from_images(images)
        assert len(trace) == 3
        frames = list(trace)
        assert frames[0].frame_type is FrameType.I
        assert frames[1].frame_type is FrameType.P

    def test_from_images_with_types(self, rng):
        images = [rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
                  for _ in range(2)]
        trace = FrameTrace.from_images(
            images, frame_types=[FrameType.I, FrameType.B])
        assert list(trace)[1].frame_type is FrameType.B

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            FrameTrace.from_frames([], 16, 16)
        with pytest.raises(GeometryError):
            FrameTrace.from_images([])

    def test_geometry_validated(self, rng):
        with pytest.raises(GeometryError):
            FrameTrace(width=16, height=16, block_size=4,
                       blocks=rng.integers(0, 256, (2, 99, 48),
                                           dtype=np.uint8),
                       frame_types=np.zeros(2, dtype=np.uint8),
                       complexity=np.ones(2),
                       encoded_bits=np.ones(2, dtype=np.int64))


class TestRoundtrip:
    def test_save_load(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        small_trace.save(path)
        loaded = FrameTrace.load(path)
        assert len(loaded) == len(small_trace)
        assert (loaded.blocks == small_trace.blocks).all()
        assert (loaded.frame_types == small_trace.frame_types).all()
        assert np.allclose(loaded.complexity, small_trace.complexity)

    def test_replay_matches_source(self, video_config):
        source = list(SyntheticVideo(video_config, workload("V8"), seed=2,
                                     n_frames=5))
        trace = FrameTrace.from_frames(source, video_config.width,
                                       video_config.height,
                                       video_config.block_size)
        for original, replayed in zip(source, trace):
            assert (original.blocks == replayed.blocks).all()
            assert original.frame_type is replayed.frame_type
            assert original.complexity == replayed.complexity

    def test_version_check(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        small_trace.save(path)
        # Corrupt the version field.
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["version"] = np.asarray(TRACE_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(GeometryError):
            FrameTrace.load(path)


class TestSimulateIntegration:
    def test_trace_drives_simulate(self, small_trace):
        result = simulate(small_trace, BASELINE, seed=0)
        assert result.n_frames == len(small_trace)
        assert result.profile_key == "trace"
        assert result.energy.total > 0

    def test_trace_geometry_overrides_config(self, small_trace):
        # The default config is 192x108; the trace is 64x32 — simulate
        # must adopt the trace geometry without error.
        result = simulate(small_trace, GAB, seed=0)
        assert result.raw_write_bytes == (
            len(small_trace) * small_trace.width * small_trace.height * 3)

    def test_n_frames_caps_trace(self, small_trace):
        result = simulate(small_trace, BASELINE, n_frames=4, seed=0)
        assert result.n_frames == 4

    def test_identical_content_through_trace_and_generator(self,
                                                           video_config):
        """A captured generator stream gives the same result replayed."""
        from repro.config import SimulationConfig
        cfg = SimulationConfig(video=video_config)
        direct = simulate(workload("V8"), BASELINE, n_frames=8, seed=2,
                          config=cfg)
        frames = SyntheticVideo(video_config, workload("V8"), seed=2,
                                n_frames=8,
                                complexity_sigma=cfg.calibration
                                .complexity_sigma)
        trace = FrameTrace.from_frames(frames, video_config.width,
                                       video_config.height,
                                       video_config.block_size)
        replayed = simulate(trace, BASELINE, seed=2, config=cfg)
        assert replayed.energy.total == pytest.approx(direct.energy.total)
        assert replayed.drops == direct.drops
