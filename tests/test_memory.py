"""Tests for the LPDDR3 memory subsystem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig
from repro.errors import MemoryModelError
from repro.memory import (
    AddressMapper,
    MemoryController,
    RegionMap,
    burst_duration,
    memory_energy,
    peak_bandwidth,
)
from repro.memory.rowbuffer import BankState, RowBufferModel


def small_dram(**overrides) -> DramConfig:
    defaults = dict(channels=2, ranks_per_channel=1, banks_per_rank=4,
                    row_bytes=1024, row_max_open=1e-6, scheduler_quantum=0.0)
    defaults.update(overrides)
    return DramConfig(**defaults)


class TestAddressMapper:
    def test_consecutive_lines_alternate_channels(self):
        config = small_dram()
        mapper = AddressMapper(config)
        bank0, _ = mapper.map_line(0)
        bank1, _ = mapper.map_line(64)
        # RoRaBaCoCh: the channel bit sits right above the line offset.
        assert bank0 != bank1

    def test_sequential_stream_sweeps_row_before_bank(self):
        config = small_dram()
        mapper = AddressMapper(config)
        # Lines 0, 2, 4, ... stay on channel 0; the first
        # lines_per_row of them share (bank, row).
        per_row = config.lines_per_row
        lines = np.arange(0, per_row * 4, 2) * 64
        banks, rows = mapper.map_lines(lines)
        same_row = set(zip(banks[:per_row].tolist(), rows[:per_row].tolist()))
        assert len(same_row) == 1
        assert (banks[per_row] != banks[0]) or (rows[per_row] != rows[0])

    def test_row_changes_after_all_banks(self):
        config = small_dram()
        mapper = AddressMapper(config)
        bytes_per_row_sweep = (config.row_bytes * config.banks_per_rank
                               * config.channels)
        _, row_a = mapper.map_line(0)
        _, row_b = mapper.map_line(bytes_per_row_sweep)
        assert row_b == row_a + 1

    def test_vector_matches_scalar(self, rng):
        config = small_dram()
        mapper = AddressMapper(config)
        addresses = rng.integers(0, 1 << 24, size=100)
        banks, rows = mapper.map_lines(addresses)
        for i in range(100):
            bank, row = mapper.map_line(int(addresses[i]))
            assert (bank, row) == (int(banks[i]), int(rows[i]))

    def test_bank_ids_in_range(self, rng):
        config = small_dram()
        mapper = AddressMapper(config)
        banks, _ = mapper.map_lines(rng.integers(0, 1 << 28, size=1000))
        assert banks.min() >= 0
        assert banks.max() < config.total_banks


class TestRegionMap:
    def test_regions_dont_overlap(self):
        config = small_dram()
        regions = RegionMap(config)
        a = regions.add("a", 1000)
        b = regions.add("b", 5000)
        assert a.end <= b.base

    def test_row_padding(self):
        config = small_dram()
        regions = RegionMap(config)
        region = regions.add("x", 1)
        assert region.size % (config.row_bytes * config.channels) == 0

    def test_duplicate_name_rejected(self):
        regions = RegionMap(small_dram())
        regions.add("x", 10)
        with pytest.raises(MemoryModelError):
            regions.add("x", 10)

    def test_offset_bounds(self):
        regions = RegionMap(small_dram())
        region = regions.add("x", 100)
        with pytest.raises(MemoryModelError):
            region.address(region.size)

    def test_lookup(self):
        regions = RegionMap(small_dram())
        regions.add("x", 10)
        assert "x" in regions
        with pytest.raises(MemoryModelError):
            regions["y"]


class TestBankState:
    def test_first_access_activates(self):
        bank = BankState()
        assert bank.access(row=5, time=0.0, max_open=1e-6)

    def test_same_row_within_window_hits(self):
        bank = BankState()
        bank.access(5, 0.0, 1e-6)
        assert not bank.access(5, 0.5e-6, 1e-6)

    def test_timeout_forces_reactivation(self):
        bank = BankState()
        bank.access(5, 0.0, 1e-6)
        assert bank.access(5, 2e-6, 1e-6)

    def test_row_conflict(self):
        bank = BankState()
        bank.access(5, 0.0, 1e-6)
        assert bank.access(6, 0.1e-6, 1e-6)


class TestMemoryController:
    def test_sequential_stream_hits_rows(self):
        config = small_dram()
        controller = MemoryController(config)
        n = 256
        addresses = np.arange(n) * 64
        times = np.arange(n) * 1e-9
        acts = controller.process_window(
            times, addresses, np.zeros(n, dtype=bool))
        # A sequential sweep activates each (bank, row) once.
        banks, rows = controller.mapper.map_lines(addresses)
        distinct = len(set(zip(banks.tolist(), rows.tolist())))
        assert acts == distinct

    def test_interleaved_streams_thrash(self):
        config = small_dram()
        n = 64
        # Two streams on the same bank, different rows, alternating.
        row_stride = config.row_bytes * config.banks_per_rank * config.channels
        stream_a = np.arange(n) % 2 * 0  # constant line 0
        stream_b = np.full(n, 10 * row_stride)
        addresses = np.empty(2 * n, dtype=np.int64)
        addresses[0::2] = stream_a
        addresses[1::2] = stream_b
        times = np.arange(2 * n) * 1e-9
        controller = MemoryController(config)
        acts = controller.process_window(
            times, addresses, np.zeros(2 * n, dtype=bool))
        assert acts == 2 * n  # every access reopens

    def test_quantum_groups_row_hits(self):
        # Same thrashing pattern, but an FR-FCFS quantum covering the
        # whole window lets the controller serve each row's accesses
        # together: only two activations.
        config = small_dram(scheduler_quantum=1.0)
        n = 64
        row_stride = config.row_bytes * config.banks_per_rank * config.channels
        addresses = np.empty(2 * n, dtype=np.int64)
        addresses[0::2] = 0
        addresses[1::2] = 10 * row_stride
        times = np.arange(2 * n) * 1e-9
        controller = MemoryController(config)
        acts = controller.process_window(
            times, addresses, np.zeros(2 * n, dtype=bool))
        assert acts == 2

    def test_state_carries_across_windows(self):
        config = small_dram()
        controller = MemoryController(config)
        ones = np.ones(1, dtype=bool)
        assert controller.process_window(
            np.asarray([0.0]), np.asarray([0]), ~ones) == 1
        # Same row shortly after, in a new window: row is still open.
        assert controller.process_window(
            np.asarray([1e-7]), np.asarray([0]), ~ones) == 0

    def test_matches_scalar_reference(self, rng):
        """Vectorized controller == scalar RowBufferModel, access by access."""
        config = small_dram()
        n = 500
        addresses = rng.integers(0, 1 << 16, size=n) // 64 * 64
        times = np.sort(rng.uniform(0, 1e-4, size=n))
        controller = MemoryController(config)
        acts = controller.process_window(
            times, addresses, np.zeros(n, dtype=bool))
        reference = RowBufferModel(config)
        mapper = AddressMapper(config)
        order = np.lexsort((times, mapper.map_lines(addresses)[0]))
        for index in order:
            bank, row = mapper.map_line(int(addresses[index]))
            reference.access(bank, row, float(times[index]))
        assert acts == reference.activations

    def test_read_write_attribution(self):
        config = small_dram()
        controller = MemoryController(config)
        times = np.asarray([0.0, 1e-9, 2e-9])
        addresses = np.asarray([0, 64, 128])
        writes = np.asarray([True, False, True])
        controller.process_window(times, addresses, writes,
                                  agents={"vd": writes, "dc": ~writes})
        assert controller.stats.write_bursts == 2
        assert controller.stats.read_bursts == 1
        assert controller.stats.by_agent == {"vd": 2, "dc": 1}

    def test_empty_window(self):
        controller = MemoryController(small_dram())
        assert controller.process_window(
            np.empty(0), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool)) == 0

    def test_mismatched_lengths_rejected(self):
        controller = MemoryController(small_dram())
        with pytest.raises(MemoryModelError):
            controller.process_window(
                np.zeros(2), np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=bool))

    @given(st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_mapper_total_ordering(self, address):
        mapper = AddressMapper(small_dram())
        bank, row = mapper.map_line(address)
        assert 0 <= bank < 8
        assert row >= 0


class TestMemoryEnergy:
    def test_components(self):
        config = small_dram()
        controller = MemoryController(config)
        n = 100
        controller.process_window(
            np.arange(n) * 1e-9, np.arange(n) * 64, np.zeros(n, dtype=bool))
        energy = memory_energy(config, controller.stats, elapsed=1.0)
        assert energy.act_pre == pytest.approx(
            controller.stats.activations * config.act_pre_energy)
        assert energy.burst == pytest.approx(n * config.burst_energy)
        assert energy.background == pytest.approx(config.background_power)
        assert energy.total == pytest.approx(
            energy.act_pre + energy.burst + energy.background)

    def test_scaled_keeps_background(self):
        config = small_dram()
        controller = MemoryController(config)
        controller.process_window(
            np.asarray([0.0]), np.asarray([0]), np.asarray([False]))
        energy = memory_energy(config, controller.stats, elapsed=2.0)
        scaled = energy.scaled(10.0)
        assert scaled.act_pre == pytest.approx(energy.act_pre * 10)
        assert scaled.background == pytest.approx(energy.background)


class TestDerivedTiming:
    def test_peak_bandwidth(self):
        config = small_dram(io_freq=800e6, channels=2)
        assert peak_bandwidth(config) == pytest.approx(12.8e9)

    def test_burst_duration(self):
        config = small_dram(io_freq=800e6)
        assert burst_duration(config) == pytest.approx(10e-9)
