"""Tests for the validation suite and the config-sweep helper."""

from __future__ import annotations

import pytest

from repro.analysis import get_config_field, set_config_field, sweep_config
from repro.config import BASELINE, SimulationConfig
from repro.core.session import Pause, Play, SessionSimulator
from repro.errors import ConfigError
from repro.validation import ClaimCheck, summarize, validate_against_paper
from repro.video import workload


class TestConfigSweep:
    def test_get_nested_field(self):
        config = SimulationConfig()
        assert get_config_field(config, "dram.channels") == 2
        assert get_config_field(config, "mach.num_machs") == 8

    def test_set_nested_field(self):
        config = SimulationConfig()
        varied = set_config_field(config, "dram.act_pre_energy", 1e-9)
        assert varied.dram.act_pre_energy == 1e-9
        # Original untouched; siblings preserved.
        assert config.dram.act_pre_energy != 1e-9
        assert varied.dram.channels == config.dram.channels
        assert varied.video is config.video

    def test_set_top_level_field(self):
        config = SimulationConfig()
        varied = set_config_field(config, "seed", 99)
        assert varied.seed == 99

    def test_unknown_path_raises(self):
        config = SimulationConfig()
        with pytest.raises(ConfigError):
            set_config_field(config, "dram.bogus", 1)
        with pytest.raises(ConfigError):
            get_config_field(config, "nope.nope")
        with pytest.raises(ConfigError):
            set_config_field(config, "dram..channels", 1)

    def test_sweep_collects_metric(self):
        config = SimulationConfig()
        results = sweep_config(
            config, "mach.num_machs", [2, 4],
            lambda cfg, value: cfg.mach.num_machs * 10)
        assert results == [(2, 20), (4, 40)]


class TestValidationMachinery:
    def test_claim_check_str(self):
        check = ClaimCheck("x", "~1", 0.5, True)
        assert "PASS" in str(check)
        assert "FAIL" in str(ClaimCheck("x", "~1", 0.5, False))

    def test_summarize_counts(self):
        checks = [ClaimCheck("a", "1", 1.0, True),
                  ClaimCheck("b", "2", 0.0, False)]
        text = summarize(checks)
        assert "1/2 claims reproduced" in text

    @pytest.mark.slow
    def test_full_suite_reproduces(self):
        """The conformance suite itself (a long-ish integration test)."""
        checks = validate_against_paper(frames=48)
        failed = [check for check in checks if not check.passed]
        # At a reduced frame count a borderline check may wobble;
        # require the overwhelming majority and zero hard failures on
        # the structural claims.
        assert len(failed) <= 2, summarize(checks)
        structural = [c for c in checks
                      if "drops" in c.claim or "best" in c.claim]
        assert all(c.passed for c in structural), summarize(checks)


class TestPanelSelfRefresh:
    def test_psr_cuts_pause_power(self):
        events = [Play(workload("V8"), 24), Pause(10.0)]
        plain = SessionSimulator(BASELINE, seed=1).run(events)
        psr = SessionSimulator(BASELINE, seed=1,
                               panel_self_refresh=True).run(events)
        assert psr.pause_energy < plain.pause_energy
        assert psr.playback_energy == pytest.approx(plain.playback_energy)
