"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, VideoConfig
from repro.video import SyntheticVideo, workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def video_config() -> VideoConfig:
    """A tiny, fast geometry used across unit tests."""
    return VideoConfig(width=64, height=32, gop_length=10,
                       b_frames_per_gop=3)


@pytest.fixture
def sim_config(video_config: VideoConfig) -> SimulationConfig:
    return SimulationConfig(video=video_config)


@pytest.fixture
def short_stream(video_config: VideoConfig):
    """A 30-frame V8 stream at the tiny test geometry."""
    return list(SyntheticVideo(video_config, workload("V8"), seed=3,
                               n_frames=30))


@pytest.fixture
def random_blocks(rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, 256, size=(200, 48), dtype=np.uint8)
