"""Tests for frame-buffer layouts and write coalescing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import (
    block_span_lines,
    coalesced_stream_lines,
    fragmentation_count,
    sequential_lines,
    uncoalesced_stream_lines,
)
from repro.core.layout import FrameLayout, LayoutMode, RecordKind
from repro.errors import LayoutError


def make_layout(n=4, mode=LayoutMode.POINTER_DIGEST, bases=True,
                data_bytes=96, dump_bytes=16) -> FrameLayout:
    return FrameLayout(
        frame_index=0,
        mode=mode,
        n_blocks=n,
        block_bytes=48,
        kinds=np.zeros(n, dtype=np.uint8),
        pointers=np.arange(n, dtype=np.int64) * 48,
        digests=np.zeros(n, dtype=np.uint64),
        bases_present=bases,
        table_base=0,
        bases_base=100,
        data_base=200,
        data_bytes=data_bytes,
        dump_base=500,
        dump_bytes=dump_bytes,
    )


class TestFrameLayout:
    def test_table_bytes_with_bitmap(self):
        layout = make_layout(n=16)
        assert layout.bitmap_bytes == 2
        assert layout.table_bytes == 16 * 4 + 2

    def test_pointer_mode_has_no_bitmap(self):
        layout = make_layout(mode=LayoutMode.POINTER)
        assert layout.bitmap_bytes == 0

    def test_raw_mode_has_no_metadata(self):
        layout = make_layout(mode=LayoutMode.RAW, bases=False,
                             dump_bytes=0)
        assert layout.table_bytes == 0
        assert layout.metadata_bytes == 0

    def test_savings_math(self):
        # 4 blocks of 48 B raw = 192 B; stored 96 B data + metadata.
        layout = make_layout(n=4, data_bytes=96, dump_bytes=0)
        expected_meta = (4 * 4 + 1) + 4 * 3  # table+bitmap, bases
        assert layout.metadata_bytes == expected_meta
        assert layout.savings == pytest.approx(
            1.0 - (96 + expected_meta) / 192)

    def test_negative_savings_possible(self):
        layout = make_layout(n=4, data_bytes=192)  # nothing matched
        assert layout.savings < 0

    def test_kind_masks(self):
        layout = make_layout(n=4)
        layout.kinds[1] = int(RecordKind.POINTER)
        layout.kinds[3] = int(RecordKind.DIGEST)
        assert layout.count(RecordKind.STORED) == 2
        assert layout.count(RecordKind.POINTER) == 1
        assert list(layout.mask(RecordKind.DIGEST)) == [
            False, False, False, True]

    def test_raw_with_bases_rejected(self):
        with pytest.raises(LayoutError):
            make_layout(mode=LayoutMode.RAW, bases=True)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(LayoutError):
            FrameLayout(
                frame_index=0, mode=LayoutMode.POINTER, n_blocks=4,
                block_bytes=48,
                kinds=np.zeros(3, dtype=np.uint8),
                pointers=np.zeros(4, dtype=np.int64),
                digests=np.zeros(4, dtype=np.uint64),
                bases_present=False, table_base=0, bases_base=0,
                data_base=0, data_bytes=0, dump_base=0, dump_bytes=0)


class TestSequentialLines:
    def test_exact_span(self):
        lines = sequential_lines(0, 128, 64)
        assert list(lines) == [0, 64]

    def test_unaligned_span(self):
        lines = sequential_lines(60, 10, 64)  # crosses one boundary
        assert list(lines) == [0, 64]

    def test_empty(self):
        assert len(sequential_lines(100, 0, 64)) == 0

    @given(st.integers(0, 10_000), st.integers(1, 5_000))
    @settings(max_examples=50, deadline=None)
    def test_covers_every_byte(self, base, nbytes):
        lines = sequential_lines(base, nbytes, 64)
        assert lines[0] <= base
        assert lines[-1] + 64 >= base + nbytes
        assert (np.diff(lines) == 64).all()


class TestStreamCoalescing:
    def test_coalesced_pointer_stream(self):
        # 32 pointers of 4 B = 128 B = 2 line writes.
        lines = coalesced_stream_lines(0, 4, 32, 64)
        assert len(lines) == 2

    def test_uncoalesced_pointer_stream(self):
        # One write per pointer; pointer 15 straddles no boundary
        # (4-byte items align), so exactly 32 writes.
        lines = uncoalesced_stream_lines(0, 4, 32, 64)
        assert len(lines) == 32

    def test_uncoalesced_blocks_straddle(self):
        # 48-byte items: offsets 0, 48, 96...: half straddle lines.
        lines = uncoalesced_stream_lines(0, 48, 8, 64)
        assert len(lines) > 8

    def test_coalescing_always_fewer_or_equal(self):
        for item, count in ((3, 100), (4, 64), (48, 20)):
            coalesced = coalesced_stream_lines(0, item, count, 64)
            uncoalesced = uncoalesced_stream_lines(0, item, count, 64)
            assert len(coalesced) <= len(uncoalesced)


class TestBlockSpanLines:
    def test_aligned_block_one_line(self):
        lines = block_span_lines(np.asarray([0]), 48, 64)
        assert list(lines) == [0]

    def test_straddling_block_two_lines(self):
        lines = block_span_lines(np.asarray([32]), 48, 64)
        assert list(lines) == [0, 64]

    def test_order_preserved(self):
        addrs = np.asarray([128, 32, 0])
        lines = block_span_lines(addrs, 48, 64)
        assert list(lines) == [128, 0, 64, 0]

    def test_fragmentation_count(self):
        # Offsets mod 64 of 0, 48, 96=32, 144=16: 48 and 32 straddle.
        addrs = np.arange(4) * 48
        assert fragmentation_count(addrs, 48, 64) == 2

    def test_empty(self):
        assert len(block_span_lines(np.empty(0, dtype=np.int64), 48)) == 0
        assert fragmentation_count(np.empty(0, dtype=np.int64), 48) == 0
