"""Tests for the analysis utilities (regions, CDFs, census, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate, workload
from repro.analysis import (
    Region,
    classify_frames,
    content_census,
    format_table,
    region_mix,
    stacked_energy_cdf,
    stacked_time_cdf,
)
from repro.analysis.report import comparison_report
from repro.config import BASELINE, GAB, PowerStateConfig
from repro.core.results import compare_schemes
from repro.video import SyntheticVideo, VideoProfile


class TestRegions:
    def test_classification_boundaries(self):
        power = PowerStateConfig()
        deadline = 1 / 60.0
        s1 = power.sleep_breakeven("S1")
        s3 = power.sleep_breakeven("S3")
        times = np.asarray([
            deadline + 1e-4,  # dropped -> I
            deadline - s1 / 2,  # short slack -> II
            deadline - (s1 + s3) / 2,  # S1 -> III
            deadline - s3 - 1e-4,  # S3 -> IV
        ])
        regions = classify_frames(times, deadline, power)
        assert list(regions) == [Region.I, Region.II, Region.III, Region.IV]

    def test_mix_sums_to_one(self):
        power = PowerStateConfig()
        times = np.random.default_rng(0).uniform(0.005, 0.02, 200)
        mix = region_mix(times, 1 / 60.0, power)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_empty(self):
        mix = region_mix(np.empty(0), 1 / 60.0, PowerStateConfig())
        assert all(v == 0.0 for v in mix.values())


class TestStackedCdf:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(workload("V8"), BASELINE, n_frames=48, seed=3)

    def test_fractions_sum_to_one(self, result):
        cdf = stacked_time_cdf(result.timeline)
        total = sum(cdf.series(s) for s in cdf.fractions)
        assert np.allclose(total, 1.0)

    def test_sorted_by_decode_time(self, result):
        cdf = stacked_time_cdf(result.timeline)
        assert (np.diff(cdf.sort_key) >= 0).all()

    def test_energy_cdf(self, result):
        cdf = stacked_energy_cdf(result.timeline)
        assert cdf.n_frames == 48
        assert 0.2 < cdf.mean_fraction("execution") <= 1.0


class TestCensus:
    def test_all_identical_frames(self, video_config):
        profile = VideoProfile(key="C", name="c", description="c",
                               n_frames=4, f_common=0.7, f_unique=0.3,
                               p_update=0.0, scene_len=100)
        frames = list(SyntheticVideo(video_config, profile, seed=1,
                                     n_frames=4))
        census = content_census(frames)
        # After frame 0, every first occurrence is an inter match.
        assert census.none_fraction < 0.5
        assert census.match_fraction > 0.5

    def test_pure_noise_never_matches(self, video_config):
        profile = VideoProfile(key="N", name="n", description="n",
                               n_frames=3, f_common=0.0, f_unique=0.0)
        frames = list(SyntheticVideo(video_config, profile, seed=1,
                                     n_frames=3))
        census = content_census(frames)
        assert census.none_fraction > 0.99

    def test_gradient_census_finds_more(self, short_stream):
        plain = content_census(short_stream)
        gradient = content_census(short_stream, use_gradient=True)
        assert gradient.match_fraction > plain.match_fraction

    def test_window_limits_inter(self, short_stream):
        wide = content_census(short_stream, window=16)
        narrow = content_census(short_stream, window=1)
        assert narrow.inter <= wide.inter

    def test_per_frame_records(self, short_stream):
        census = content_census(short_stream)
        assert len(census.per_frame) == len(short_stream)
        for _index, intra, inter, none in census.per_frame:
            assert intra + inter + none == short_stream[0].n_blocks


class TestTables:
    def test_alignment_and_header(self):
        table = format_table(["name", "value"],
                             [["a", 1.5], ["bb", 22.25]], precision=2)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in table and "22.25" in table

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestReport:
    def test_comparison_report(self):
        results = [simulate(workload("V8"), scheme, n_frames=24, seed=4)
                   for scheme in (BASELINE, GAB)]
        report = comparison_report([compare_schemes(results)])
        assert "V8" in report
        assert "GAB" in report
        assert "normalized" in report.lower() or "Normalized" in report

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_report([])
