"""Tests for the B-frame (bidirectional) codec extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CodecError
from repro.video import FrameType
from repro.video.codec import (
    SequenceDecoder,
    SequenceEncoder,
    decode_sequence,
    encode_sequence,
)


def smooth_clip(n=9, size=(48, 64), step=2):
    y, x = np.mgrid[0:size[0], 0:size[1]]
    base = np.clip(255 - np.hypot(y - 20.0, x - 30.0) * 5, 0, 255)
    return [np.roll(base.astype(np.uint8), step * i, axis=1)
            for i in range(n)]


class TestCodingOrder:
    def test_minigop_structure(self):
        frames = encode_sequence(smooth_clip(7), b_frames=2)
        order = [(f.display_index, f.encoded.frame_type) for f in frames]
        # display 0 = I, then anchor 3 before B1/B2, anchor 6 before B4/B5.
        assert order[0] == (0, FrameType.I)
        assert order[1][1] in (FrameType.P, FrameType.I)
        assert order[1][0] == 3
        assert {order[2][0], order[3][0]} == {1, 2}
        assert order[2][1] is FrameType.B

    def test_all_frames_emitted_once(self):
        frames = encode_sequence(smooth_clip(10), b_frames=3)
        indices = sorted(f.display_index for f in frames)
        assert indices == list(range(10))

    def test_zero_b_frames_is_ip_stream(self):
        frames = encode_sequence(smooth_clip(5), b_frames=0)
        types = [f.encoded.frame_type for f in frames]
        assert FrameType.B not in types
        assert [f.display_index for f in frames] == list(range(5))

    def test_flush_handles_partial_minigop(self):
        encoder = SequenceEncoder(b_frames=3)
        emitted = []
        for image in smooth_clip(5):  # 1 anchor + 4 pending > one mini-GOP
            emitted.extend(encoder.push(image))
        emitted.extend(encoder.flush())
        assert sorted(f.display_index for f in emitted) == list(range(5))


class TestDecoding:
    def test_display_order_restored(self):
        clip = smooth_clip(9)
        decoded = decode_sequence(encode_sequence(clip, b_frames=2))
        assert len(decoded) == 9
        # Motion content: each decoded frame must track its original.
        for original, out in zip(clip, decoded):
            err = np.abs(out.astype(int) - original.astype(int)).mean()
            assert err < 8.0

    def test_deterministic(self):
        clip = smooth_clip(6)
        a = decode_sequence(encode_sequence(clip, b_frames=2))
        b = decode_sequence(encode_sequence(clip, b_frames=2))
        for frame_a, frame_b in zip(a, b):
            assert (frame_a == frame_b).all()

    def test_b_before_anchors_raises(self):
        clip = smooth_clip(4)
        frames = encode_sequence(clip, b_frames=2)
        b_frame = next(f for f in frames
                       if f.encoded.frame_type is FrameType.B)
        decoder = SequenceDecoder()
        with pytest.raises(CodecError):
            decoder.decode(b_frame.encoded)


class TestCompressionShape:
    def test_b_frames_cheaper_than_anchors(self):
        frames = encode_sequence(smooth_clip(9), b_frames=2)
        b_bits = [f.encoded.bits for f in frames
                  if f.encoded.frame_type is FrameType.B]
        p_bits = [f.encoded.bits for f in frames
                  if f.encoded.frame_type is FrameType.P]
        assert b_bits and p_bits
        assert max(b_bits) < min(p_bits)

    def test_static_scene_b_frames_mostly_skip(self):
        # Use a quantization fixed point as content (encode once and
        # take the reconstruction), so static frames match exactly.
        from repro.video.codec import Encoder
        bootstrap = Encoder(quality=60)
        bootstrap.encode_frame(smooth_clip(1)[0])
        image = bootstrap.reference
        clip = [image.copy() for _ in range(5)]
        frames = encode_sequence(clip, quality=60, b_frames=2)
        b_encoded = [f.encoded for f in frames
                     if f.encoded.frame_type is FrameType.B]
        assert b_encoded
        for encoded in b_encoded:
            assert encoded.skip_mabs >= encoded.total_mabs * 0.5

    def test_bidirectional_prediction_used_on_occlusion(self):
        """A sprite appearing mid-GOP needs the future reference."""
        clip = smooth_clip(4, step=0)
        clip[2] = clip[2].copy()
        clip[2][16:32, 16:32] = 0  # present only in frame 2 (a B frame)
        frames = encode_sequence(clip, b_frames=2)
        decoded = decode_sequence(frames)
        err = np.abs(decoded[2].astype(int) - clip[2].astype(int)).mean()
        assert err < 10.0
