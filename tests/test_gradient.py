"""Tests for the gradient-block (gab) transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.core.gradient import from_gradient, to_gradient
from repro.errors import GeometryError


class TestGradientTransform:
    def test_first_pixel_becomes_zero(self, random_blocks):
        gabs, _ = to_gradient(random_blocks)
        assert (gabs[:, :3] == 0).all()

    def test_bases_are_first_pixels(self, random_blocks):
        _, bases = to_gradient(random_blocks)
        assert (bases == random_blocks[:, :3]).all()

    def test_exact_roundtrip(self, random_blocks):
        gabs, bases = to_gradient(random_blocks)
        assert (from_gradient(gabs, bases) == random_blocks).all()

    @given(arrays(np.uint8, (7, 12)))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, blocks):
        gabs, bases = to_gradient(blocks)
        assert (from_gradient(gabs, bases) == blocks).all()

    def test_uniform_shift_gives_equal_gabs(self, rng):
        """The paper's Fig. 8e: blue and yellow flat blocks share a gab."""
        block = rng.integers(0, 200, size=(1, 48), dtype=np.uint8)
        shift = np.tile(np.asarray([[13, 200, 55]], dtype=np.uint8), (1, 16))
        shifted = block + shift  # uint8 wraparound
        gab_a, _ = to_gradient(block)
        gab_b, _ = to_gradient(shifted)
        assert (gab_a == gab_b).all()

    def test_flat_blocks_share_zero_gab(self):
        flat_blue = np.tile(np.asarray([[10, 20, 250]], dtype=np.uint8),
                            (1, 16))
        flat_red = np.tile(np.asarray([[200, 3, 7]], dtype=np.uint8), (1, 16))
        gab_blue, _ = to_gradient(flat_blue)
        gab_red, _ = to_gradient(flat_red)
        assert (gab_blue == 0).all()
        assert (gab_blue == gab_red).all()

    def test_different_textures_different_gabs(self, rng):
        blocks = rng.integers(0, 256, size=(2, 48), dtype=np.uint8)
        gabs, _ = to_gradient(blocks)
        assert (gabs[0] != gabs[1]).any()

    def test_rejects_wrong_dtype(self):
        with pytest.raises(GeometryError):
            to_gradient(np.zeros((2, 48), dtype=np.int32))

    def test_rejects_mismatched_bases(self):
        gabs = np.zeros((3, 48), dtype=np.uint8)
        with pytest.raises(GeometryError):
            from_gradient(gabs, np.zeros((2, 3), dtype=np.uint8))
