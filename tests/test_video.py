"""Tests for the video substrate: blocks, GOP, synthesis, workloads."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import VideoConfig
from repro.errors import ConfigError, GeometryError
from repro.video import (
    PAPER_WORKLOADS,
    FrameType,
    SyntheticVideo,
    VideoProfile,
    block_bases,
    gop_frame_types,
    join_blocks,
    split_blocks,
    workload,
    workload_keys,
)
from repro.video.gop import gop_pattern


class TestBlockOps:
    def test_split_join_roundtrip(self, rng):
        image = rng.integers(0, 256, size=(32, 64, 3), dtype=np.uint8)
        blocks = split_blocks(image, 4)
        assert blocks.shape == (8 * 16, 48)
        assert (join_blocks(blocks, 64, 32, 4) == image).all()

    def test_raster_order(self):
        image = np.zeros((8, 8, 3), dtype=np.uint8)
        image[0:4, 4:8] = 7  # second block in raster order
        blocks = split_blocks(image, 4)
        assert (blocks[1] == 7).all()
        assert (blocks[0] == 0).all()

    def test_block_bases(self, rng):
        image = rng.integers(0, 256, size=(8, 8, 3), dtype=np.uint8)
        blocks = split_blocks(image, 4)
        bases = block_bases(blocks)
        assert (bases[0] == image[0, 0]).all()
        assert (bases[1] == image[0, 4]).all()

    def test_geometry_errors(self):
        with pytest.raises(GeometryError):
            split_blocks(np.zeros((10, 10, 3), dtype=np.uint8), 4)
        with pytest.raises(GeometryError):
            join_blocks(np.zeros((4, 48), dtype=np.uint8), 64, 32, 4)

    @given(st.integers(1, 4).map(lambda b: 4 * b))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_various_sizes(self, block):
        rng = np.random.default_rng(block)
        image = rng.integers(0, 256, size=(block * 2, block * 3, 3),
                             dtype=np.uint8)
        blocks = split_blocks(image, block)
        assert (join_blocks(blocks, block * 3, block * 2, block)
                == image).all()


class TestGop:
    def test_starts_with_i(self):
        assert gop_pattern(12, 8)[0] is FrameType.I

    def test_counts(self):
        pattern = gop_pattern(30, 8)
        assert len(pattern) == 30
        assert sum(t is FrameType.I for t in pattern) == 1
        assert sum(t is FrameType.B for t in pattern) == 8

    def test_repeats_over_stream(self):
        types = list(gop_frame_types(25, gop_length=10, b_frames=3))
        assert types[0] is FrameType.I
        assert types[10] is FrameType.I
        assert types[20] is FrameType.I

    def test_single_frame_gop(self):
        assert gop_pattern(1, 0) == [FrameType.I]

    def test_too_many_b_frames(self):
        with pytest.raises(ConfigError):
            gop_pattern(5, 5)


class TestVideoConfig:
    def test_derived_geometry(self):
        cfg = VideoConfig(width=192, height=108)
        assert cfg.blocks_per_frame == 48 * 27
        assert cfg.block_bytes == 48
        assert cfg.frame_bytes == 192 * 108 * 3
        assert cfg.frame_interval == pytest.approx(1 / 60)

    def test_scale_to_native(self):
        cfg = VideoConfig(width=192, height=108)
        assert cfg.scale_to_native == pytest.approx(400.0)

    def test_rejects_non_divisible(self):
        with pytest.raises(ConfigError):
            VideoConfig(width=190, height=108)


class TestSyntheticVideo:
    def test_deterministic(self, video_config):
        a = list(SyntheticVideo(video_config, workload("V5"), seed=9,
                                n_frames=10))
        b = list(SyntheticVideo(video_config, workload("V5"), seed=9,
                                n_frames=10))
        for frame_a, frame_b in zip(a, b):
            assert (frame_a.blocks == frame_b.blocks).all()
            assert frame_a.complexity == frame_b.complexity

    def test_seed_changes_content(self, video_config):
        a = next(iter(SyntheticVideo(video_config, workload("V5"), seed=1)))
        b = next(iter(SyntheticVideo(video_config, workload("V5"), seed=2)))
        assert (a.blocks != b.blocks).any()

    def test_frame_shape_and_metadata(self, short_stream, video_config):
        assert len(short_stream) == 30
        for frame in short_stream:
            assert frame.blocks.shape == (video_config.blocks_per_frame,
                                          video_config.block_bytes)
            assert frame.blocks.dtype == np.uint8
            assert frame.complexity > 0
            assert frame.encoded_bits > 0

    def test_gop_structure(self, short_stream, video_config):
        assert short_stream[0].frame_type is FrameType.I
        assert short_stream[video_config.gop_length].frame_type is FrameType.I

    def test_i_frames_cost_more_bits(self, short_stream):
        i_bits = [f.encoded_bits / f.complexity for f in short_stream
                  if f.frame_type is FrameType.I]
        p_bits = [f.encoded_bits / f.complexity for f in short_stream
                  if f.frame_type is FrameType.P]
        assert min(i_bits) > max(p_bits)

    def test_static_blocks_persist(self, video_config):
        """With zero churn and no noise class, frames are identical."""
        profile = VideoProfile(key="T", name="t", description="t",
                               n_frames=5, p_update=0.0, scene_len=100,
                               f_common=0.6, f_unique=0.4)
        frames = list(SyntheticVideo(video_config, profile, seed=4,
                                     n_frames=5))
        assert (frames[1].blocks == frames[2].blocks).all()

    def test_noise_blocks_churn(self, video_config):
        """An all-noise profile never repeats content across frames."""
        profile = VideoProfile(key="N", name="n", description="n",
                               n_frames=3, f_common=0.0, f_unique=0.0,
                               scene_len=100)
        frames = list(SyntheticVideo(video_config, profile, seed=4,
                                     n_frames=3))
        assert (frames[1].blocks != frames[2].blocks).any(axis=1).all()

    def test_scene_cut_replaces_pools(self, video_config):
        profile = VideoProfile(key="S", name="s", description="s",
                               n_frames=6, scene_len=3, p_update=0.0)
        frames = list(SyntheticVideo(video_config, profile, seed=4,
                                     n_frames=6))
        same = (frames[2].blocks == frames[3].blocks).all(axis=1).mean()
        assert same < 0.05  # the cut regenerates nearly everything


class TestVideoProfile:
    def test_fraction_validation(self):
        with pytest.raises(ConfigError):
            VideoProfile(key="X", name="x", description="x", n_frames=1,
                         f_common=0.8, f_unique=0.3)

    def test_f_noise_derived(self):
        profile = VideoProfile(key="X", name="x", description="x",
                               n_frames=1, f_common=0.4, f_unique=0.1)
        assert profile.f_noise == pytest.approx(0.5)


class TestWorkloads:
    def test_sixteen_videos(self):
        assert len(PAPER_WORKLOADS) == 16
        assert workload_keys() == tuple(f"V{i}" for i in range(1, 17))

    def test_lookup_case_insensitive(self):
        assert workload("v8").name == "007 Skyfall"

    def test_unknown_key(self):
        with pytest.raises(ConfigError):
            workload("V17")

    def test_table1_frame_counts(self):
        # Spot-check against the paper's Table 1.
        assert workload("V1").n_frames == 6507
        assert workload("V12").n_frames == 10147
        assert workload("V13").n_frames == 1699
