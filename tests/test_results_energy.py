"""Tests for result containers, the energy breakdown, and units."""

from __future__ import annotations

import pytest

from repro import simulate, workload
from repro.config import (
    BASELINE,
    GAB,
    DisplayConfig,
    MachConfig,
    PowerStateConfig,
)
from repro.core.energy import EnergyBreakdown, build_breakdown
from repro.core.results import compare_schemes
from repro.decoder.power import PowerTracker, plan_slack
from repro.memory.energy import MemoryEnergy
from repro import units


class TestUnits:
    def test_time_helpers(self):
        assert units.ms(16.6) == pytest.approx(0.0166)
        assert units.us(5) == pytest.approx(5e-6)
        assert units.ns(26) == pytest.approx(26e-9)
        assert units.to_ms(0.0166) == pytest.approx(16.6)

    def test_power_energy_helpers(self):
        assert units.mw(300) == pytest.approx(0.3)
        assert units.mj(5) == pytest.approx(5e-3)
        assert units.to_mj(0.005) == pytest.approx(5.0)

    def test_size_helpers(self):
        assert units.kib(16) == 16384
        assert units.mib(1) == 1 << 20
        assert units.to_mib(1 << 21) == pytest.approx(2.0)

    def test_frequency(self):
        assert units.mhz(150) == pytest.approx(150e6)


class TestEnergyBreakdown:
    def test_total_is_sum(self):
        breakdown = EnergyBreakdown(dc=1.0, mem_background=2.0,
                                    vd_processing=3.0, mem_burst=0.5,
                                    mem_act_pre=1.5)
        assert breakdown.total == pytest.approx(8.0)
        assert breakdown.memory_total == pytest.approx(4.0)
        assert breakdown.vd_total == pytest.approx(3.0)

    def test_normalized_to(self):
        a = EnergyBreakdown(dc=2.0)
        b = EnergyBreakdown(dc=1.0)
        normalized = b.normalized_to(a)
        assert normalized["dc"] == pytest.approx(0.5)

    def test_per_frame_mj(self):
        breakdown = EnergyBreakdown(dc=0.032)
        assert breakdown.per_frame_mj(16) == pytest.approx(2.0)
        assert EnergyBreakdown().per_frame_mj(0) == 0.0

    def test_build_breakdown_components(self):
        power = PowerStateConfig()
        tracker = PowerTracker(power)
        tracker.record_execution(0.01, 0.3)
        tracker.record_slack(plan_slack(0.1, power))
        memory = MemoryEnergy(act_pre=0.001, burst=0.0005,
                              background=0.002)
        breakdown = build_breakdown(tracker, memory, DisplayConfig(),
                                    MachConfig(), GAB, elapsed=1.0)
        assert breakdown.vd_processing == pytest.approx(0.003)
        assert breakdown.mem_act_pre == pytest.approx(0.001)
        assert breakdown.dc == pytest.approx(0.12)
        # GAB pays the full MACH + display-cache + buffer power.
        assert breakdown.mach_overhead > 0.03

    def test_baseline_has_no_overhead(self):
        power = PowerStateConfig()
        tracker = PowerTracker(power)
        memory = MemoryEnergy(0.0, 0.0, 0.0)
        breakdown = build_breakdown(tracker, memory, DisplayConfig(),
                                    MachConfig(), BASELINE, elapsed=1.0)
        assert breakdown.mach_overhead == 0.0

    def test_co_mach_adds_power(self):
        from dataclasses import replace
        power = PowerStateConfig()
        tracker = PowerTracker(power)
        memory = MemoryEnergy(0.0, 0.0, 0.0)
        plain = build_breakdown(tracker, memory, DisplayConfig(),
                                MachConfig(), GAB, elapsed=1.0)
        deep = build_breakdown(tracker, memory, DisplayConfig(),
                               replace(MachConfig(), co_mach=True), GAB,
                               elapsed=1.0)
        assert deep.mach_overhead > plain.mach_overhead


class TestRunResultProperties:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(workload("V8"), GAB, n_frames=24, seed=6)

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("energy_mj_per_frame", "drop_rate", "s3_residency",
                    "write_savings", "read_savings"):
            assert key in summary

    def test_savings_properties(self, result):
        assert 0.0 < result.write_savings < 1.0
        assert result.raw_write_bytes > result.write_bytes

    def test_timeline_lengths(self, result):
        assert len(result.timeline.decode_time) == 24
        assert len(result.timeline.dropped) == 24


class TestCompareSchemes:
    def test_normalization(self):
        results = [simulate(workload("V8"), scheme, n_frames=24, seed=6)
                   for scheme in (BASELINE, GAB)]
        comparison = compare_schemes(results)
        normalized = comparison.normalized_energy()
        assert normalized["Baseline"] == pytest.approx(1.0)
        assert normalized["GAB"] < 1.0
        assert comparison.savings("GAB") == pytest.approx(
            1.0 - normalized["GAB"])

    def test_component_stacks_sum(self):
        results = [simulate(workload("V8"), scheme, n_frames=24, seed=6)
                   for scheme in (BASELINE, GAB)]
        stacks = compare_schemes(results).normalized_components()
        assert sum(stacks["Baseline"].values()) == pytest.approx(1.0)

    def test_mixed_videos_rejected(self):
        a = simulate(workload("V8"), BASELINE, n_frames=12, seed=6)
        b = simulate(workload("V9"), BASELINE, n_frames=12, seed=6)
        with pytest.raises(ValueError):
            compare_schemes([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_schemes([])
