"""Supervised shard execution: the crash-invariant exact-merge contract.

The headline invariant under test: for any seeded kill/stall/corrupt
schedule in which the run completes, the supervised fleet result is
bit-identical to the undisturbed serial (``shards=1``) run — including
after a mid-run kill plus checkpoint resume.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from tests.test_fleet import tiny_spec

from repro.backoff import SITE_STRIPE_RETRY, backoff_delay
from repro.errors import FleetError, ShardError
from repro.faults import (
    FaultError,
    ShardFault,
    ShardFaultConfig,
    ShardFaultPlan,
)
from repro.fleet import (
    PHASE_LOAD,
    PHASE_SCORE,
    MergePlane,
    StripePartial,
    SupervisorConfig,
    execute_stripe,
    run_fleet,
    run_fleet_supervised,
    validate_partial,
)
from repro.fleet.shard import (
    StripeTask,
    StripeWorld,
    load_stripe_checkpoint,
    make_tasks,
    plan_stripes,
    save_stripe_checkpoint,
    tamper_partial,
)
from repro.fleet.surrogate import calibrate


@pytest.fixture(scope="module")
def spec():
    return tiny_spec()


@pytest.fixture(scope="module")
def calib(spec):
    return calibrate(spec)


@pytest.fixture(scope="module")
def world(spec, calib):
    bounds, _ = plan_stripes(600, 3)
    return StripeWorld(spec=spec, seed=5, bounds=bounds,
                       tables=calib.coefficient_arrays(spec),
                       fps=30.0, field=None)


def _json(result):
    return json.dumps(result.to_jsonable(), sort_keys=True)


def _supervisor(**overrides):
    """Fast-protocol knobs suited to a 1-CPU CI box."""
    defaults = dict(workers=2, lease_seconds=0.6, heartbeat_seconds=0.1,
                    max_retries=6, backoff_base=0.02, backoff_cap=0.2,
                    speculation_min_seconds=0.3)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestFaultPlan:
    def test_rates_must_be_sane(self):
        with pytest.raises(FaultError):
            ShardFaultConfig(crash_rate=-0.1)
        with pytest.raises(FaultError):
            ShardFaultConfig(crash_rate=0.6, stall_rate=0.6)

    def test_disabled_plan_is_none(self):
        assert ShardFaultPlan.from_config(None) is None
        assert ShardFaultPlan.from_config(ShardFaultConfig()) is None

    def test_order_free_and_phase_independent(self):
        plan = ShardFaultPlan.from_config(ShardFaultConfig(
            crash_rate=0.25, stall_rate=0.25, corrupt_rate=0.25,
            slow_rate=0.25, max_faulty_attempts=10, seed=3))
        draws = [plan.stripe_fault("load", s, a)
                 for s in range(20) for a in range(3)]
        again = [plan.stripe_fault("load", s, a)
                 for s in range(20) for a in range(3)]
        assert draws == again
        load = [plan.stripe_fault("load", s, 0) for s in range(50)]
        score = [plan.stripe_fault("score", s, 0) for s in range(50)]
        assert load != score  # phases draw independently

    def test_faults_stop_after_max_attempts(self):
        plan = ShardFaultPlan.from_config(ShardFaultConfig(
            crash_rate=1.0, max_faulty_attempts=2, seed=0))
        assert plan.stripe_fault("load", 0, 0) is ShardFault.CRASH
        assert plan.stripe_fault("load", 0, 1) is ShardFault.CRASH
        assert plan.stripe_fault("load", 0, 2) is None


class TestStripePartials:
    def test_execute_is_pure(self, world):
        task = StripeTask(phase=PHASE_SCORE, stripe_id=0,
                          chunks=(0,))
        first = execute_stripe(world, task)
        second = execute_stripe(world, task)
        assert first == second
        validate_partial(world, task, first)

    def test_tampering_is_detected(self, world):
        for phase in (PHASE_LOAD, PHASE_SCORE):
            task = StripeTask(phase=phase, stripe_id=0, chunks=(0,))
            partial = tamper_partial(execute_stripe(world, task))
            with pytest.raises(FleetError, match="checksum"):
                validate_partial(world, task, partial)

    def test_wrong_task_is_rejected(self, world):
        task = StripeTask(phase=PHASE_SCORE, stripe_id=0, chunks=(0,))
        other = StripeTask(phase=PHASE_SCORE, stripe_id=1, chunks=(0,))
        partial = execute_stripe(world, task)
        with pytest.raises(FleetError, match="does not answer"):
            validate_partial(world, other, partial)

    def test_roundtrip_checksum_verified(self, world):
        task = StripeTask(phase=PHASE_SCORE, stripe_id=0, chunks=(0,))
        partial = execute_stripe(world, task)
        again = StripePartial.from_jsonable(partial.to_jsonable())
        assert again == partial
        broken = partial.to_jsonable()
        broken["payload"] = json.loads(json.dumps(broken["payload"]))
        broken["payload"]["cohorts"]["fleet"]["moments"][
            "total_energy"]["q_sum"] += 1
        with pytest.raises(ValueError, match="checksum"):
            StripePartial.from_jsonable(broken)


class TestMergePlane:
    def test_duplicates_fold_once(self, spec, world):
        plane = MergePlane(spec, seed=5)
        task = StripeTask(phase=PHASE_SCORE, stripe_id=0, chunks=(0,))
        partial = execute_stripe(world, task)
        assert plane.offer_partial(world, task, partial)
        assert not plane.offer_partial(world, task, partial)
        assert plane.duplicates_dropped == 1

    def test_corrupt_partial_never_touches_state(self, spec, world):
        plane = MergePlane(spec, seed=5)
        task = StripeTask(phase=PHASE_SCORE, stripe_id=0, chunks=(0,))
        with pytest.raises(FleetError):
            plane.offer_partial(world, task, tamper_partial(
                execute_stripe(world, task)))
        # The stripe is still unmerged: the clean retry must fold.
        assert plane.offer_partial(world, task,
                                   execute_stripe(world, task))

    def test_result_requires_merged_stripes(self, spec):
        plane = MergePlane(spec, seed=5)
        with pytest.raises(ShardError):
            plane.result(n_sessions=10, contention=False)
        with pytest.raises(ShardError):
            plane.finalize_load()


class TestBackoffPolicy:
    def test_deterministic_and_bounded(self):
        delays = [backoff_delay(7, SITE_STRIPE_RETRY, 3, attempt,
                                base=0.1, cap=2.0)
                  for attempt in range(8)]
        again = [backoff_delay(7, SITE_STRIPE_RETRY, 3, attempt,
                               base=0.1, cap=2.0)
                 for attempt in range(8)]
        assert delays == again
        for attempt, delay in enumerate(delays):
            scale = min(2.0, 0.1 * 2.0 ** attempt)
            assert 0.5 * scale <= delay < scale
        assert backoff_delay(7, SITE_STRIPE_RETRY, 3, 4,
                             base=0.0, cap=2.0) == 0.0

    def test_indices_decorrelate(self):
        delays = {backoff_delay(7, SITE_STRIPE_RETRY, index, 0,
                                base=0.5, cap=8.0)
                  for index in range(16)}
        assert len(delays) == 16


class TestSupervisedRuns:
    def test_unfaulted_supervised_matches_serial(self, spec, calib):
        serial = run_fleet(spec, 400, seed=5, shards=1,
                           calibration=calib)
        run = run_fleet_supervised(spec, 400, seed=5, shards=3,
                                   calibration=calib,
                                   supervisor=_supervisor())
        assert _json(run.result) == _json(serial)
        assert run.report.faults_absorbed == 0

    def test_inline_mode_matches_serial(self, spec, calib):
        serial = run_fleet(spec, 400, seed=5, shards=1,
                           calibration=calib)
        run = run_fleet_supervised(
            spec, 400, seed=5, shards=3, calibration=calib,
            faults=ShardFaultConfig(crash_rate=0.4, corrupt_rate=0.2,
                                    max_faulty_attempts=2, seed=3),
            supervisor=_supervisor(workers=0, backoff_base=0.0))
        assert _json(run.result) == _json(serial)
        assert run.report.faults_absorbed > 0

    def test_retry_exhaustion_raises(self, spec, calib):
        with pytest.raises(ShardError, match="max_retries"):
            run_fleet_supervised(
                spec, 400, seed=5, shards=2, contention=False,
                calibration=calib,
                faults=ShardFaultConfig(crash_rate=1.0,
                                        max_faulty_attempts=99,
                                        seed=0),
                supervisor=_supervisor(workers=0, backoff_base=0.0,
                                       max_retries=2))

    def test_lease_revokes_stalled_worker(self, spec, calib):
        serial = run_fleet(spec, 400, seed=5, shards=1, contention=False,
                           calibration=calib)
        run = run_fleet_supervised(
            spec, 400, seed=5, shards=2, contention=False,
            calibration=calib,
            faults=ShardFaultConfig(stall_rate=1.0,
                                    max_faulty_attempts=1, seed=0),
            supervisor=_supervisor())
        assert run.report.lease_revocations == 2
        assert _json(run.result) == _json(serial)

    @given(st.integers(0, 2**32 - 1), st.integers(3, 4))
    @settings(max_examples=5, deadline=None)
    def test_chaos_schedules_are_bit_invariant(self, spec, calib,
                                               chaos_seed, shards):
        """The headline invariant, swept over seeded fault schedules."""
        serial = run_fleet(spec, 500, seed=5, shards=1,
                           calibration=calib)
        run = run_fleet_supervised(
            spec, 500, seed=5, shards=shards, calibration=calib,
            faults=ShardFaultConfig(crash_rate=0.3, stall_rate=0.15,
                                    corrupt_rate=0.2, slow_rate=0.1,
                                    slow_seconds=0.2,
                                    max_faulty_attempts=2,
                                    seed=chaos_seed),
            supervisor=_supervisor())
        assert _json(run.result) == _json(serial)

    def test_kill_then_checkpoint_resume_is_bit_identical(
            self, spec, calib, tmp_path):
        serial = run_fleet(spec, 500, seed=5, shards=1,
                           calibration=calib)
        ckpt = str(tmp_path / "fleet.ckpt.json")
        faults = ShardFaultConfig(crash_rate=0.3, corrupt_rate=0.2,
                                  max_faulty_attempts=2, seed=11)
        with pytest.raises(ShardError, match="halted"):
            run_fleet_supervised(
                spec, 500, seed=5, shards=4, calibration=calib,
                faults=faults, checkpoint=ckpt,
                supervisor=_supervisor(halt_after_stripes=2))
        assert os.path.exists(ckpt)
        run = run_fleet_supervised(spec, 500, seed=5, shards=4,
                                   calibration=calib, faults=faults,
                                   checkpoint=ckpt,
                                   supervisor=_supervisor())
        assert run.report.resumed_stripes >= 2
        assert _json(run.result) == _json(serial)


class TestStripeCheckpoints:
    def _completed_partials(self, world, n=2):
        # 600 sessions fit one chunk; later stripes are empty (legal).
        tasks = make_tasks(PHASE_SCORE, [(0,), (), ()])
        return [execute_stripe(world, task) for task in tasks[:n]]

    def test_roundtrip(self, world, tmp_path):
        path = str(tmp_path / "stripes.json")
        meta = {"fingerprint": "abc", "n_sessions": 600}
        partials = self._completed_partials(world)
        save_stripe_checkpoint(path, meta, partials)
        loaded, quarantined = load_stripe_checkpoint(path, meta)
        assert not quarantined
        assert loaded == sorted(partials,
                                key=lambda p: (p.phase, p.stripe_id))

    def test_tampered_entry_quarantines_file(self, world, tmp_path):
        path = str(tmp_path / "stripes.json")
        meta = {"fingerprint": "abc"}
        save_stripe_checkpoint(path, meta,
                               self._completed_partials(world))
        with open(path) as handle:
            data = json.load(handle)
        data["completed"][0]["payload"]["cohorts"]["fleet"]["moments"][
            "total_energy"]["q_sum"] += 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        loaded, quarantined = load_stripe_checkpoint(path, meta)
        assert loaded == []
        assert list(quarantined) == [path + ".corrupt"]
        assert "checksum" in quarantined[path + ".corrupt"]
        assert not os.path.exists(path)

    def test_stale_superset_stripes_ignored(self, spec, calib,
                                            tmp_path):
        """A checkpoint holding load stripes must not leak them into a
        contention-free resume (strict-superset stripe set)."""
        ckpt = str(tmp_path / "fleet.ckpt.json")
        run_fleet_supervised(spec, 400, seed=5, shards=2,
                             contention=True, calibration=calib,
                             checkpoint=ckpt,
                             supervisor=_supervisor())
        serial = run_fleet(spec, 400, seed=5, shards=1,
                           contention=False, calibration=calib)
        # Same meta except contention -> different run, quarantined.
        run = run_fleet_supervised(spec, 400, seed=5, shards=2,
                                   contention=False, calibration=calib,
                                   checkpoint=ckpt,
                                   supervisor=_supervisor())
        assert run.report.checkpoint_quarantined
        assert _json(run.result) == _json(serial)

    def test_superset_within_matching_meta_ignored(self, spec, calib,
                                                   tmp_path):
        """Stale stripe entries inside a meta-matching checkpoint are
        dropped, not merged."""
        ckpt = str(tmp_path / "fleet.ckpt.json")
        run_fleet_supervised(spec, 400, seed=5, shards=2,
                             contention=False, calibration=calib,
                             checkpoint=ckpt,
                             supervisor=_supervisor())
        with open(ckpt) as handle:
            data = json.load(handle)
        # Forge a stale stripe the run will never ask for.
        stale = json.loads(json.dumps(data["completed"][0]))
        stale["stripe_id"] = 7
        from repro.fleet.shard import payload_checksum
        stale["checksum"] = payload_checksum(stale["payload"])
        data["completed"].append(stale)
        with open(ckpt, "w") as handle:
            json.dump(data, handle)
        serial = run_fleet(spec, 400, seed=5, shards=1,
                           contention=False, calibration=calib)
        run = run_fleet_supervised(spec, 400, seed=5, shards=2,
                                   contention=False, calibration=calib,
                                   checkpoint=ckpt,
                                   supervisor=_supervisor())
        assert run.report.stale_stripes_ignored == 1
        assert run.report.resumed_stripes == 2
        assert _json(run.result) == _json(serial)


class TestReportRoundTrip:
    def test_report_json_roundtrip(self):
        from repro.fleet import ShardEvent, SupervisionReport
        report = SupervisionReport(
            workers=2, crashes=3, lease_revocations=1,
            corrupt_rejected=2, worker_errors=1, duplicates_dropped=4,
            speculations=1, retries=5, resumed_stripes=2,
            stale_stripes_ignored=1,
            events=[ShardEvent("crash", "load", 1, 0, "exit 3"),
                    ShardEvent("done", "score", 0, 1)],
            checkpoint_quarantined={"f.ckpt.corrupt": "not valid JSON"},
            stripe_seconds={"load:1": 1.5, "score:0": 0.25})
        data = json.loads(json.dumps(report.to_jsonable()))
        rebuilt = SupervisionReport.from_jsonable(data)
        assert rebuilt == report
        assert rebuilt.to_jsonable() == report.to_jsonable()
        assert rebuilt.faults_absorbed == report.faults_absorbed
