"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "V8", "gab",
                                          "--frames", "32"])
        assert args.video == "V8"
        assert args.scheme == "gab"
        assert args.frames == 32

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "V8", "turbo"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "V1" in out and "V16" in out
        assert "SES Astra" in out

    def test_run(self, capsys):
        assert main(["run", "V8", "gab", "--frames", "24"]) == 0
        out = capsys.readouterr().out
        assert "mJ/frame" in out
        assert "MACH" in out

    def test_run_baseline_has_no_mach_line(self, capsys):
        assert main(["run", "V8", "baseline", "--frames", "24"]) == 0
        assert "MACH:" not in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census", "--videos", "V8", "--frames", "24"]) == 0
        out = capsys.readouterr().out
        assert "intra" in out

    def test_compare(self, capsys):
        assert main(["compare", "--videos", "V8", "--frames", "24"]) == 0
        out = capsys.readouterr().out
        assert "GAB" in out
        assert "Normalized energy" in out

    def test_trace_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "t.npz")
        assert main(["trace", "capture", path, "--video", "V8",
                     "--frames", "12"]) == 0
        assert main(["trace", "census", path]) == 0
        assert main(["trace", "run", path, "--scheme", "gab"]) == 0
        out = capsys.readouterr().out
        assert "captured 12 frames" in out
        assert "baseline energy" in out
