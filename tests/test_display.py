"""Tests for the display subsystem: frame buffers, vsync, MACH buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DisplayConfig, VideoConfig
from repro.display import (
    DisplayController,
    FrameBufferPool,
    MachBuffer,
)
from repro.errors import ConfigError, SchedulingError


class TestFrameBufferPool:
    def make_pool(self, slots=3, retention=0) -> FrameBufferPool:
        return FrameBufferPool(region_base=0, slot_bytes=1 << 16,
                               slots=slots, retention=retention)

    def test_admission_and_addresses(self):
        pool = self.make_pool()
        a = pool.admit(0)
        b = pool.admit(1)
        assert a.base == 0
        assert b.base == 1 << 16
        assert pool.live_count == 2

    def test_full_pool_rejects(self):
        pool = self.make_pool(slots=2)
        pool.admit(0)
        pool.admit(1)
        assert not pool.can_admit()
        with pytest.raises(SchedulingError):
            pool.admit(2)

    def test_display_retires_without_retention(self):
        pool = self.make_pool(slots=2)
        pool.admit(0)
        pool.mark_displayed(0)
        assert pool.live_count == 0

    def test_retention_holds_referenced_frames(self):
        pool = self.make_pool(slots=6, retention=2)
        for i in range(4):
            pool.admit(i)
        for i in range(4):
            pool.mark_displayed(i)
        # displayed_upto=3, retention=2: frames 2, 3 must stay live.
        assert not pool.is_live(0)
        assert not pool.is_live(1)
        assert pool.is_live(2)
        assert pool.is_live(3)

    def test_footprint_tracking(self):
        pool = self.make_pool()
        pool.admit(0)
        pool.set_footprint(0, 1000)
        pool.admit(1)
        pool.set_footprint(1, 500)
        assert pool.live_footprint == 1500
        pool.mark_displayed(0)
        assert pool.live_footprint == 500
        assert pool.peak_footprint == 1500

    def test_peak_native_rescale(self):
        pool = self.make_pool()
        pool.admit(0)
        pool.set_footprint(0, 100)
        video = VideoConfig(width=192, height=108)
        assert pool.peak_footprint_native(video) == pytest.approx(100 * 400)

    def test_out_of_order_display_of_skipped_frame(self):
        pool = self.make_pool(slots=4)
        pool.admit(0)
        pool.admit(1)
        pool.mark_displayed(1)  # frame 0 skipped (dropped)
        assert pool.is_live(0)  # not displayed yet
        pool.mark_displayed(0)  # late retire
        assert not pool.is_live(0)

    def test_slot_lookup_errors(self):
        pool = self.make_pool()
        with pytest.raises(SchedulingError):
            pool.slot(5)

    def test_needs_two_slots(self):
        with pytest.raises(SchedulingError):
            FrameBufferPool(0, 64, slots=1)


class TestDisplayController:
    def test_vsync_schedule(self):
        dc = DisplayController(DisplayConfig(refresh_hz=60))
        assert dc.vsync_time(0) == pytest.approx(0.0)
        assert dc.vsync_time(3) == pytest.approx(3 / 60)

    def test_scan_window_duty(self):
        dc = DisplayController(DisplayConfig(refresh_hz=60), scan_duty=0.5)
        start, end = dc.scan_window(1)
        assert start == pytest.approx(1 / 60)
        assert end - start == pytest.approx(0.5 / 60)

    def test_drop_accounting(self):
        dc = DisplayController(DisplayConfig())
        dc.record_refresh(0, ready=True)
        dc.record_refresh(1, ready=False)
        dc.record_refresh(2, ready=True)
        assert dc.stats.frames_shown == 2
        assert dc.stats.drops == 1
        assert dc.stats.dropped_frames == [1]
        assert dc.stats.drop_rate == pytest.approx(1 / 3)


class TestMachBuffer:
    def test_lazy_first_use_misses_then_hits(self):
        buffer = MachBuffer(capacity_entries=16, policy="lazy")
        digests = np.asarray([1, 2, 1, 3, 2], dtype=np.uint64)
        hits, missed = buffer.process_frame(digests)
        assert list(hits) == [False, False, True, False, True]
        assert set(missed.tolist()) == {1, 2, 3}

    def test_lazy_hits_across_frames(self):
        buffer = MachBuffer(capacity_entries=16, policy="lazy")
        buffer.process_frame(np.asarray([7, 8], dtype=np.uint64))
        hits, missed = buffer.process_frame(np.asarray([7, 9], dtype=np.uint64))
        assert list(hits) == [True, False]
        assert missed.tolist() == [9]

    def test_eager_needs_prefetch(self):
        buffer = MachBuffer(capacity_entries=16, policy="eager")
        hits, _ = buffer.process_frame(np.asarray([5], dtype=np.uint64))
        assert not hits[0]
        buffer.prefetch_dump(np.asarray([5], dtype=np.uint64))
        hits, _ = buffer.process_frame(np.asarray([5], dtype=np.uint64))
        assert hits[0]

    def test_capacity_eviction_fifo(self):
        buffer = MachBuffer(capacity_entries=2, policy="lazy")
        buffer.process_frame(np.asarray([1, 2, 3], dtype=np.uint64))
        assert buffer.resident_entries == 2
        hits, _ = buffer.process_frame(np.asarray([1], dtype=np.uint64))
        assert not hits[0]  # 1 was the oldest, evicted
        hits, _ = buffer.process_frame(np.asarray([3], dtype=np.uint64))
        assert hits[0]

    def test_hit_rate(self):
        buffer = MachBuffer(capacity_entries=8)
        buffer.process_frame(np.asarray([1, 1, 1, 1], dtype=np.uint64))
        assert buffer.hit_rate == pytest.approx(0.75)

    def test_empty_frame(self):
        buffer = MachBuffer(capacity_entries=8)
        hits, missed = buffer.process_frame(np.empty(0, dtype=np.uint64))
        assert len(hits) == 0 and len(missed) == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            MachBuffer(capacity_entries=0)
        with pytest.raises(ConfigError):
            MachBuffer(capacity_entries=4, policy="psychic")
