"""Tests for repro.fleet — population engine, sketches, surrogate.

The load-bearing properties here are the determinism contracts: the
online aggregates must be *exactly* mergeable (any shard layout or
merge tree produces bit-identical JSON), and the population draws must
be pure functions of (seed, uid) so re-sharding never changes who the
fleet is.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, FleetError
from repro.fleet import (
    DeviceClass,
    FleetCalibration,
    FleetResult,
    HistogramSketch,
    LognormalComponent,
    PopulationModel,
    PopulationSpec,
    RegionSpec,
    ReservoirSample,
    StreamingMoments,
    calibrate,
    default_population,
    hash_u01_array,
    hash_u64_array,
    load_or_calibrate,
    run_fleet,
)
from repro.units import MBPS

finite_values = st.lists(
    st.floats(min_value=-1e4, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    max_size=120)
positive_values = st.lists(
    st.floats(min_value=1e-7, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=120)


def tiny_spec(seed: int = 3) -> PopulationSpec:
    """A 2-title, 1-device population cheap enough for unit tests."""
    return PopulationSpec(
        device_classes=(DeviceClass(name="ref", scheme="gab"),),
        regions=(RegionSpec(
            name="town", cells=2, cell_capacity=6 * MBPS,
            bandwidth=(LognormalComponent(median=5 * MBPS, sigma=0.4),),
        ),),
        titles=("V1", "V8"),
        duration_median_seconds=8.0,
        duration_sigma=0.3,
        duration_min_seconds=4.0,
        duration_max_seconds=20.0,
        arrival_window_seconds=30.0,
        epoch_seconds=2.0,
        calib_frames=16,
        calib_seed=seed,
    )


@pytest.fixture(scope="module")
def spec() -> PopulationSpec:
    return tiny_spec()


@pytest.fixture(scope="module")
def calib(spec: PopulationSpec) -> FleetCalibration:
    return calibrate(spec)


class TestStreamingMoments:
    @given(finite_values, st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_serial_fold(self, values, cut):
        cut = min(cut, len(values))
        serial = StreamingMoments()
        serial.add_array(np.asarray(values))
        left, right = StreamingMoments(), StreamingMoments()
        left.add_array(np.asarray(values[:cut]))
        right.add_array(np.asarray(values[cut:]))
        assert left.merge(right).to_jsonable() == serial.to_jsonable()
        assert right.merge(left).to_jsonable() == serial.to_jsonable()

    @given(finite_values, finite_values, finite_values)
    @settings(max_examples=40, deadline=None)
    def test_merge_associative(self, a_vals, b_vals, c_vals):
        a, b, c = (StreamingMoments() for _ in range(3))
        a.add_array(np.asarray(a_vals))
        b.add_array(np.asarray(b_vals))
        c.add_array(np.asarray(c_vals))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_jsonable() == right.to_jsonable()

    def test_statistics_against_numpy(self):
        rng = np.random.default_rng(11)
        values = rng.normal(50.0, 7.0, size=4000)
        moments = StreamingMoments()
        moments.add_array(values)
        assert moments.count == values.size
        assert moments.mean == pytest.approx(values.mean(), abs=1e-3)
        assert moments.std == pytest.approx(values.std(), rel=1e-3)
        assert moments.minimum == pytest.approx(values.min(), abs=1e-3)
        assert moments.maximum == pytest.approx(values.max(), abs=1e-3)

    def test_empty_summary(self):
        empty = StreamingMoments()
        assert empty.count == 0
        assert empty.mean == 0.0
        assert empty.variance == 0.0

    def test_quantum_mismatch_rejected(self):
        with pytest.raises(FleetError):
            StreamingMoments(quantum=1e-3).merge(
                StreamingMoments(quantum=1e-2))

    @given(finite_values)
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip(self, values):
        moments = StreamingMoments()
        moments.add_array(np.asarray(values))
        data = json.loads(json.dumps(moments.to_jsonable()))
        assert StreamingMoments.from_jsonable(
            data).to_jsonable() == moments.to_jsonable()


class TestHistogramSketch:
    @given(positive_values, st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_serial_fold(self, values, cut):
        cut = min(cut, len(values))
        serial = HistogramSketch()
        serial.add_array(np.asarray(values))
        left, right = HistogramSketch(), HistogramSketch()
        left.add_array(np.asarray(values[:cut]))
        right.add_array(np.asarray(values[cut:]))
        merged = left.merge(right)
        assert merged.to_jsonable() == serial.to_jsonable()
        assert merged.total == len(values)

    def test_quantile_bounds(self):
        hist = HistogramSketch()
        values = np.geomspace(0.01, 100.0, 500)
        hist.add_array(values)
        for q, exact in ((0.5, np.quantile(values, 0.5)),
                         (0.95, np.quantile(values, 0.95))):
            measured = hist.quantile(q)
            assert measured == pytest.approx(exact, rel=0.08)
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_out_of_range_values_counted(self):
        hist = HistogramSketch()
        hist.add_array(np.asarray([0.0, -3.0, 1e-9, 1e9]))
        assert hist.total == 4
        assert int(hist.counts[0]) == 3  # zero, negative, below range
        assert int(hist.counts[-1]) == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FleetError):
            HistogramSketch(bins_per_decade=8).merge(HistogramSketch())

    def test_json_round_trip(self):
        hist = HistogramSketch()
        hist.add_array(np.geomspace(0.1, 10.0, 64))
        data = json.loads(json.dumps(hist.to_jsonable()))
        restored = HistogramSketch.from_jsonable(data)
        assert restored.to_jsonable() == hist.to_jsonable()


class TestReservoirSample:
    @given(st.lists(st.integers(0, 2**40), unique=True, max_size=150),
           st.integers(0, 2**32), st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_offer_order_free(self, uids, seed, cut):
        cut = min(cut, len(uids))
        uid_arr = np.asarray(uids, dtype=np.int64)
        values = uid_arr.astype(np.float64) * 0.5
        whole = ReservoirSample(capacity=16, seed=seed)
        whole.offer_array(uid_arr, values)
        chunked = ReservoirSample(capacity=16, seed=seed)
        chunked.offer_array(uid_arr[cut:], values[cut:])
        chunked.offer_array(uid_arr[:cut], values[:cut])
        assert chunked.to_jsonable() == whole.to_jsonable()

    @given(st.lists(st.integers(0, 2**40), unique=True, max_size=150),
           st.integers(0, 2**32), st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_merge_matches_union(self, uids, seed, cut):
        cut = min(cut, len(uids))
        uid_arr = np.asarray(uids, dtype=np.int64)
        values = uid_arr.astype(np.float64)
        whole = ReservoirSample(capacity=16, seed=seed)
        whole.offer_array(uid_arr, values)
        left = ReservoirSample(capacity=16, seed=seed)
        right = ReservoirSample(capacity=16, seed=seed)
        left.offer_array(uid_arr[:cut], values[:cut])
        right.offer_array(uid_arr[cut:], values[cut:])
        assert left.merge(right).to_jsonable() == whole.to_jsonable()
        assert right.merge(left).to_jsonable() == whole.to_jsonable()

    def test_capacity_bound_and_determinism(self):
        uids = np.arange(1000, dtype=np.int64)
        values = uids.astype(np.float64)
        first = ReservoirSample(capacity=32, seed=5)
        second = ReservoirSample(capacity=32, seed=5)
        first.offer_array(uids, values)
        second.offer_array(uids, values)
        assert len(first.uids) == 32
        assert first.to_jsonable() == second.to_jsonable()
        other_seed = ReservoirSample(capacity=32, seed=6)
        other_seed.offer_array(uids, values)
        assert other_seed.uids != first.uids

    def test_seed_mismatch_rejected(self):
        with pytest.raises(FleetError):
            ReservoirSample(seed=1).merge(ReservoirSample(seed=2))


class TestHashing:
    def test_unit_interval_and_determinism(self):
        idx = np.arange(10_000, dtype=np.int64)
        u = hash_u01_array(9, 0x1234, idx)
        assert np.all((u >= 0.0) & (u < 1.0))
        assert 0.45 < u.mean() < 0.55
        again = hash_u01_array(9, 0x1234, idx)
        assert np.array_equal(u, again)

    def test_site_and_seed_separation(self):
        idx = np.arange(256, dtype=np.int64)
        base = hash_u64_array(9, 0x1234, idx)
        assert not np.array_equal(base, hash_u64_array(9, 0x1235, idx))
        assert not np.array_equal(base, hash_u64_array(10, 0x1234, idx))


class TestPopulation:
    def test_chunk_draws_are_pure_per_uid(self, spec):
        model = PopulationModel(spec, seed=21)
        whole = model.draw_chunk(0, 600)
        tail = model.draw_chunk(200, 400)
        for name in ("device", "region", "cell", "title"):
            assert np.array_equal(getattr(whole, name)[200:],
                                  getattr(tail, name))
        for name in ("duration_seconds", "bandwidth", "start_seconds"):
            assert np.array_equal(getattr(whole, name)[200:],
                                  getattr(tail, name))

    def test_chunk_invariants(self, spec):
        chunk = PopulationModel(spec, seed=4).draw_chunk(0, 2000)
        assert chunk.device.max() < len(spec.device_classes)
        assert chunk.title.max() < len(spec.titles)
        assert chunk.cell.max() < spec.regions[0].cells
        assert np.all(chunk.duration_seconds >= spec.duration_min_seconds)
        assert np.all(chunk.duration_seconds <= spec.duration_max_seconds)
        assert np.all(chunk.bandwidth > 0)
        assert np.all((chunk.start_seconds >= 0)
                      & (chunk.start_seconds < spec.arrival_window_seconds))

    def test_zipf_titles_are_skewed(self):
        spec = default_population()
        chunk = PopulationModel(spec, seed=1).draw_chunk(0, 20_000)
        counts = np.bincount(chunk.title, minlength=len(spec.titles))
        assert counts[0] > counts[-1] * 1.5

    def test_spec_round_trip_and_fingerprint(self, spec):
        data = json.loads(json.dumps(spec.to_jsonable()))
        restored = PopulationSpec.from_jsonable(data)
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()
        assert restored.fingerprint() != default_population().fingerprint()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            PopulationSpec(device_classes=(), regions=tiny_spec().regions)
        with pytest.raises(ConfigError):
            DeviceClass(name="x", scheme="warp-drive")
        with pytest.raises(ConfigError):
            RegionSpec(name="r", cells=0, bandwidth=(
                LognormalComponent(median=MBPS),))


class TestCalibration:
    def test_covers_every_pair(self, spec, calib):
        assert calib.fingerprint == spec.fingerprint()
        for device in spec.device_classes:
            for title in spec.titles:
                entry = calib.entry(device.name, title)
                assert entry.energy_per_frame > 0
                assert entry.stall_power > 0

    def test_missing_pair_rejected(self, calib):
        with pytest.raises(FleetError):
            calib.entry("ref", "V999")

    def test_cache_round_trip(self, spec, calib, tmp_path):
        path = str(tmp_path / "calib.json")
        calib.save(path)
        assert FleetCalibration.load(
            path).to_jsonable() == calib.to_jsonable()

    def test_cache_hit_skips_recalibration(self, spec, calib, tmp_path):
        path = str(tmp_path / "calib.json")
        calib.save(path)
        log: list = []
        loaded = load_or_calibrate(spec, path, progress=log.append)
        assert loaded.to_jsonable() == calib.to_jsonable()
        # one drift probe, no "calibrating ..." lines
        assert [line for line in log if "calibrating" in line] == []

    def test_corrupt_cache_rebuilt(self, spec, calib, tmp_path):
        path = str(tmp_path / "calib.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        rebuilt = load_or_calibrate(spec, path, drift_check=False)
        assert rebuilt.to_jsonable() == calib.to_jsonable()

    def test_fingerprint_mismatch_rebuilt(self, spec, calib, tmp_path):
        path = str(tmp_path / "calib.json")
        stale = FleetCalibration(fingerprint="0" * 16,
                                 entries=dict(calib.entries))
        stale.save(path)
        rebuilt = load_or_calibrate(spec, path, drift_check=False)
        assert rebuilt.fingerprint == spec.fingerprint()


class TestRunFleet:
    def test_shard_count_is_invisible(self, spec, calib):
        results = [run_fleet(spec, 700, seed=9, shards=shards,
                             calibration=calib)
                   for shards in (1, 3, 7)]
        baseline = results[0].to_jsonable()
        for other in results[1:]:
            assert other.to_jsonable() == baseline

    def test_result_round_trip(self, spec, calib):
        result = run_fleet(spec, 400, seed=2, calibration=calib)
        data = json.loads(json.dumps(result.to_jsonable(),
                                     sort_keys=True))
        restored = FleetResult.from_jsonable(data)
        assert restored.to_jsonable() == result.to_jsonable()

    def test_cohorts_partition_fleet(self, spec, calib):
        result = run_fleet(spec, 500, seed=8, calibration=calib)
        fleet = result.cohort("fleet")
        assert fleet.count == 500
        title_total = sum(result.cohort(f"title:{t}").count
                          for t in spec.titles)
        assert title_total == 500

    def test_stale_calibration_rejected(self, spec, calib):
        stale = FleetCalibration(fingerprint="f" * 16,
                                 entries=dict(calib.entries))
        with pytest.raises(FleetError):
            run_fleet(spec, 100, calibration=stale)

    def test_report_renders(self, spec, calib):
        result = run_fleet(spec, 300, seed=1, calibration=calib)
        report = result.report()
        assert "fleet" in report
        assert "title:V8" in report
        assert "p95" in report


class TestFleetCLI:
    def test_end_to_end(self, spec, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(spec.to_jsonable(), handle)
        calib_path = str(tmp_path / "calib.json")
        out_path = str(tmp_path / "report.json")
        argv = ["fleet", "--spec", spec_path, "--sessions", "300",
                "--shards", "2", "--calibration", calib_path,
                "--json", out_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fleet" in out
        with open(out_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert FleetResult.from_jsonable(payload).n_sessions == 300
        # second run hits the calibration cache and agrees exactly
        assert main(argv) == 0
        with open(out_path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == payload
