"""Tests for the network model and Race-to-Sleep governor."""

from __future__ import annotations

import pytest

from repro.config import (
    BASELINE,
    BATCHING,
    RACE_TO_SLEEP,
    DecoderConfig,
    NetworkConfig,
)
from repro.core.batching import NetworkModel
from repro.core.race_to_sleep import RaceToSleepGovernor


def make_network(preroll=60, chunk=0.45, total=600) -> NetworkModel:
    return NetworkModel(NetworkConfig(chunk_interval=chunk,
                                      preroll_frames=preroll),
                        fps=60.0, total_frames=total)


class TestNetworkModel:
    def test_preroll_available_at_start(self):
        net = make_network(preroll=60)
        assert net.frames_available(0.0) == 60

    def test_chunks_accumulate(self):
        net = make_network(preroll=60, chunk=0.5)
        # chunk_frames = 30 at 60 fps.
        assert net.frames_available(0.49) == 60
        assert net.frames_available(0.5) == 90
        assert net.frames_available(1.7) == 60 + 3 * 30

    def test_capped_at_total(self):
        net = make_network(preroll=60, total=70)
        assert net.frames_available(100.0) == 70

    def test_time_when_available_inverts(self):
        net = make_network(preroll=60, chunk=0.5)
        for count in (1, 60, 61, 90, 200):
            t = net.time_when_available(count)
            assert net.frames_available(t) >= min(count, net.total_frames)
            if t > 0:
                assert net.frames_available(t - 1e-6) < count

    def test_negative_time(self):
        assert make_network().frames_available(-1.0) == 0


class TestGovernor:
    def make(self, scheme, display_lead=1, preroll=300):
        net = make_network(preroll=preroll)
        return RaceToSleepGovernor(scheme, DecoderConfig(), net,
                                   frame_interval=1 / 60.0,
                                   display_lead=display_lead)

    def test_baseline_wakes_at_call_time(self):
        governor = self.make(BASELINE)
        plan = governor.plan_wake(now=0.0, next_frame=10,
                                  batch_buffers_free_time=0.0)
        assert plan.wake_time == pytest.approx(10 / 60.0)
        assert plan.reason == "immediate"

    def test_baseline_never_wakes_in_past(self):
        governor = self.make(BASELINE)
        plan = governor.plan_wake(now=1.0, next_frame=10,
                                  batch_buffers_free_time=0.0)
        assert plan.wake_time == pytest.approx(1.0)

    def test_batching_waits_for_buffers(self):
        governor = self.make(BATCHING)
        # Frame 60's deadline is ~1 s away, so the 0.1 s buffer-drain
        # gate is what the governor waits for.
        plan = governor.plan_wake(now=0.0, next_frame=60,
                                  batch_buffers_free_time=0.1)
        assert plan.wake_time == pytest.approx(0.1)
        assert plan.reason == "batch-ready"

    def test_deadline_overrides_batch_formation(self):
        governor = self.make(BATCHING)
        # Buffers would only free very late; frame 60's deadline forces
        # an earlier wake.
        plan = governor.plan_wake(now=0.0, next_frame=60,
                                  batch_buffers_free_time=10.0)
        assert plan.wake_time < 10.0
        assert plan.reason == "deadline"
        assert plan.wake_time <= governor.latest_safe_start(60)

    def test_past_deadline_wakes_immediately(self):
        governor = self.make(BATCHING)
        # Frame 0's safe start is already in the past: wake now.
        plan = governor.plan_wake(now=0.0, next_frame=0,
                                  batch_buffers_free_time=10.0)
        assert plan.wake_time == 0.0

    def test_racing_shrinks_safety_margin(self):
        slow = self.make(BATCHING)
        fast = self.make(RACE_TO_SLEEP)
        assert (fast.conservative_decode_time()
                < slow.conservative_decode_time())
        assert fast.latest_safe_start(5) > slow.latest_safe_start(5)

    def test_deadline_lead(self):
        governor = self.make(BASELINE, display_lead=2)
        assert governor.deadline(10) == pytest.approx(12 / 60.0)
