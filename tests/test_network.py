"""Tests for the trace-driven delivery subsystem (repro.network)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    BASELINE,
    RACE_TO_SLEEP,
    NetworkConfig,
    RadioConfig,
    SimulationConfig,
    VideoConfig,
)
from repro.core.session import Play, simulate_session
from repro.errors import ConfigError, NetworkError
from repro.network import (
    AbrContext,
    BufferBasedAbr,
    DeliveredNetworkModel,
    FixedAbr,
    PlaybackBuffer,
    RadioModel,
    RateBasedAbr,
    constant_trace,
    load_trace,
    lte_trace,
    make_abr,
    save_trace,
    segment_video,
    simulate_delivery,
    step_trace,
)
from repro.units import mbps
from repro.video import workload

VIDEO = VideoConfig()


def make_segments(n_frames=3600, seed=3, **kwargs):
    return segment_video(workload("V8"), VIDEO, n_frames=n_frames,
                         seed=seed, **kwargs)


def run_delivery(segments, trace, abr=None, radio=None, **kwargs):
    kwargs.setdefault("preroll_seconds", 2.0)
    kwargs.setdefault("capacity_seconds", 10.0)
    kwargs.setdefault("low_watermark_seconds", 3.0)
    return simulate_delivery(segments, trace, abr or make_abr("bba"),
                             radio or RadioConfig(), **kwargs)


class TestBandwidthTrace:
    def test_constant_math(self):
        trace = constant_trace(1000.0)
        assert trace.rate_at(0.0) == 1000.0
        assert trace.rate_at(99.0) == 1000.0
        assert trace.bytes_between(1.0, 3.5) == pytest.approx(2500.0)
        assert trace.transfer_time(500.0, 2.0) == pytest.approx(2.5)

    def test_piecewise_transfer_spans_levels(self):
        trace = step_trace((1000.0, 0.0, 2000.0), period=1.0)
        # 1500 bytes: 1 s at 1000 B/s, 1 s outage, 0.25 s at 2000 B/s.
        assert trace.transfer_time(1500.0, 0.0) == pytest.approx(2.25)
        assert trace.bytes_between(0.0, 2.25) == pytest.approx(1500.0)

    def test_dead_tail_is_infinite(self):
        import math

        trace = step_trace((1000.0, 0.0), period=1.0)
        assert math.isinf(trace.transfer_time(5000.0, 0.0))

    def test_lte_trace_deterministic_and_renormalized(self):
        a = lte_trace(mbps(24), duration=60, seed=5)
        b = lte_trace(mbps(24), duration=60, seed=5)
        c = lte_trace(mbps(24), duration=60, seed=6)
        assert a == b
        assert a != c
        assert a.mean_rate == pytest.approx(mbps(24), rel=0.05)
        assert all(rate >= 0 for rate in a.rates)

    def test_validation(self):
        from repro.network import BandwidthTrace

        with pytest.raises(ConfigError):
            BandwidthTrace((), ())
        with pytest.raises(ConfigError):
            BandwidthTrace((1.0,), (10.0,))  # must start at 0
        with pytest.raises(ConfigError):
            BandwidthTrace((0.0, 0.0), (1.0, 1.0))  # not increasing
        with pytest.raises(ConfigError):
            BandwidthTrace((0.0,), (-1.0,))

    def test_file_round_trip(self, tmp_path):
        trace = lte_trace(mbps(10), duration=10, seed=2)
        path = str(tmp_path / "trace.csv")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.timestamps == pytest.approx(trace.timestamps)
        assert loaded.rates == pytest.approx(trace.rates, rel=1e-3)

    def test_file_loader_accepts_whitespace_and_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n0 1000\n1.5 2000\n\n3,500\n")
        trace = load_trace(str(path))
        assert trace.timestamps == (0.0, 1.5, 3.0)
        assert trace.rates == (1000.0, 2000.0, 500.0)


class TestSegments:
    def test_counts_and_tail_segment(self):
        seg = make_segments(n_frames=150)  # 2.5 s at 60 fps
        assert seg.n_segments == 3
        assert seg.n_frames == 150
        assert seg.segments[-1].n_frames == 30
        assert seg.segments[-1].duration == pytest.approx(0.5)
        assert seg.duration == pytest.approx(2.5)

    def test_sizes_scale_with_rung(self):
        seg = make_segments(n_frames=600)
        for segment in seg.segments:
            assert list(segment.sizes) == sorted(segment.sizes)
            # Full-length segments land near rate * duration.
            if segment.duration == pytest.approx(1.0):
                for rate, size in zip(seg.ladder, segment.sizes):
                    assert size == pytest.approx(rate, rel=0.6)

    def test_deterministic_per_seed(self):
        assert make_segments(seed=4) == make_segments(seed=4)
        assert make_segments(seed=4) != make_segments(seed=5)

    def test_generic_source_needs_frame_count(self):
        with pytest.raises(ConfigError):
            segment_video(None, VIDEO)
        seg = segment_video(None, VIDEO, n_frames=120)
        assert seg.n_frames == 120
        assert seg.source_key == "stream"


class TestPlaybackBuffer:
    def test_fill_and_drain(self):
        buffer = PlaybackBuffer(10.0)
        buffer.fill(4.0)
        played = buffer.play(3.0, content_remaining=100.0)
        assert played == pytest.approx(3.0)
        assert buffer.level == pytest.approx(1.0)
        assert buffer.stall_seconds == 0.0

    def test_stall_accounting(self):
        buffer = PlaybackBuffer(10.0)
        buffer.fill(1.0)
        played = buffer.play(2.5, content_remaining=100.0)
        assert played == pytest.approx(1.0)
        assert buffer.stall_seconds == pytest.approx(1.5)
        assert buffer.stall_events == 1
        # Still the same stall period: no new event.
        buffer.play(1.0, content_remaining=100.0)
        assert buffer.stall_events == 1

    def test_no_stall_after_content_exhausted(self):
        buffer = PlaybackBuffer(10.0)
        buffer.fill(1.0)
        buffer.play(5.0, content_remaining=0.0)
        assert buffer.stall_seconds == 0.0

    def test_overfill_rejected(self):
        buffer = PlaybackBuffer(2.0)
        with pytest.raises(ConfigError):
            buffer.fill(3.0)


class TestAbrPolicies:
    def ctx(self, level=5.0, capacity=10.0, throughput=0.0, last=-1):
        return AbrContext(buffer_seconds=level, buffer_capacity=capacity,
                          throughput=throughput, last_rung=last)

    def test_fixed_clamps(self):
        ladder = (100.0, 200.0, 300.0)
        assert FixedAbr(rung=99).select(ladder, self.ctx()) == 2
        assert FixedAbr(rung=-3).select(ladder, self.ctx()) == 0

    def test_rate_based_tracks_throughput(self):
        ladder = (100.0, 200.0, 400.0)
        abr = RateBasedAbr(safety=0.9)
        assert abr.select(ladder, self.ctx(throughput=0.0)) == 0
        assert abr.select(ladder, self.ctx(throughput=250.0)) == 1
        assert abr.select(ladder, self.ctx(throughput=5000.0)) == 2

    def test_buffer_based_maps_occupancy(self):
        ladder = (100.0, 200.0, 300.0, 400.0)
        abr = BufferBasedAbr(reservoir_fraction=0.2, cushion_fraction=0.6)
        assert abr.select(ladder, self.ctx(level=1.0)) == 0
        assert abr.select(ladder, self.ctx(level=9.0)) == 3
        middle = abr.select(ladder, self.ctx(level=5.0))
        assert 0 < middle < 3

    def test_registry(self):
        assert make_abr("bba").name == "bba"
        with pytest.raises(ConfigError):
            make_abr("nope")


class TestRadioModel:
    CONFIG = RadioConfig(active_power=1.0, tail_power=0.5,
                         idle_power=0.01, tail_seconds=2.0,
                         promotion_latency=0.1, promotion_energy=0.2)

    def test_no_activity_is_all_idle(self):
        energy = RadioModel(self.CONFIG).energy([], horizon=100.0)
        assert energy.active_seconds == 0.0
        assert energy.idle_seconds == pytest.approx(100.0)
        assert energy.promotions == 0
        assert energy.total == pytest.approx(1.0)

    def test_tail_caps_at_timer(self):
        energy = RadioModel(self.CONFIG).energy([(0.0, 1.0)], horizon=10.0)
        assert energy.active_seconds == pytest.approx(1.0)
        assert energy.tail_seconds == pytest.approx(2.0)
        assert energy.idle_seconds == pytest.approx(7.0)
        assert energy.promotions == 1

    def test_short_gap_stays_in_tail(self):
        # Gap of 1 s < 2 s tail: no second promotion, no idle between.
        energy = RadioModel(self.CONFIG).energy(
            [(0.0, 1.0), (2.0, 3.0)], horizon=3.0)
        assert energy.promotions == 1
        assert energy.idle_seconds == 0.0
        assert energy.tail_seconds == pytest.approx(1.0)

    def test_long_gap_promotes_again(self):
        energy = RadioModel(self.CONFIG).energy(
            [(0.0, 1.0), (10.0, 11.0)], horizon=11.0)
        assert energy.promotions == 2
        assert energy.tail_seconds == pytest.approx(2.0)
        assert energy.idle_seconds == pytest.approx(7.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RadioConfig(idle_power=2.0, tail_power=1.0, active_power=0.5)
        with pytest.raises(ConfigError):
            RadioConfig(tail_seconds=-1.0)


class TestDelivery:
    def test_bit_identical_determinism(self):
        seg = make_segments()
        trace = lte_trace(mbps(24), duration=120, seed=1)
        runs = [run_delivery(seg, trace) for _ in range(2)]
        assert runs[0] == runs[1]  # dataclass equality, every field

    def test_fat_link_never_stalls(self):
        result = run_delivery(make_segments(), constant_trace(mbps(200)))
        assert result.stall_seconds == 0.0
        assert result.startup_seconds < 1.0
        # BBA climbs to the top rung once the buffer is comfortable
        # (it dips again whenever a burst starts at the low watermark).
        assert max(c.rung for c in result.chunks) == make_segments().top_rung

    def test_starved_link_stalls(self):
        result = run_delivery(make_segments(n_frames=1200),
                              constant_trace(mbps(1.0)),
                              abr=make_abr("fixed", rung=0))
        assert result.stall_seconds > 0.0
        assert result.stall_events >= 1

    def test_outage_trace_stalls_and_recovers(self):
        trace = step_trace((mbps(20), 0.0), period=10.0, repeats=10)
        result = run_delivery(make_segments(), trace)
        assert result.stall_seconds > 0.0
        assert result.n_frames == 3600  # everything still delivered

    def test_burst_beats_steady_radio_energy_at_equal_stalls(self):
        seg = make_segments()
        trace = lte_trace(mbps(24), duration=120, seed=1)
        abr_kwargs = dict(abr=make_abr("fixed", rung=2))
        steady = run_delivery(seg, trace, download_mode="steady",
                              **abr_kwargs)
        burst = run_delivery(seg, trace, download_mode="burst",
                             **abr_kwargs)
        assert steady.stall_events == burst.stall_events
        assert burst.radio.total < steady.radio.total
        # The saving is the tail: burst idles the modem between bursts.
        assert burst.radio.idle_seconds > steady.radio.idle_seconds
        assert burst.radio.tail_energy < steady.radio.tail_energy

    def test_switch_counting(self):
        result = run_delivery(make_segments(), constant_trace(mbps(200)))
        rungs = [c.rung for c in result.chunks]
        expected = sum(1 for a, b in zip(rungs, rungs[1:]) if a != b)
        assert result.switches == expected

    def test_capacity_too_small_rejected(self):
        with pytest.raises(NetworkError):
            run_delivery(make_segments(), constant_trace(mbps(20)),
                         capacity_seconds=0.5)


class TestDeliveredNetworkModel:
    def make_model(self, n_frames=3600):
        result = run_delivery(make_segments(n_frames=n_frames),
                              constant_trace(mbps(40)))
        return DeliveredNetworkModel(result, n_frames)

    def test_monotonic_availability(self):
        model = self.make_model()
        counts = [model.frames_available(t / 2) for t in range(0, 100)]
        assert counts == sorted(counts)
        assert counts[-1] <= model.total_frames

    def test_inverse_consistency(self):
        model = self.make_model()
        for count in (1, 60, 600, 3600):
            t = model.time_when_available(count)
            assert model.frames_available(t) >= count

    def test_preroll_available_at_start(self):
        model = self.make_model()
        assert model.frames_available(0.0) > 0

    def test_pipeline_accepts_delivered_model(self):
        from repro import simulate

        n = 48
        result = run_delivery(make_segments(n_frames=n),
                              constant_trace(mbps(100)))
        model = DeliveredNetworkModel(result, n)
        run = simulate(workload("V8"), RACE_TO_SLEEP, n_frames=n,
                       seed=1, network_model=model)
        assert run.n_frames == n
        assert run.drops == 0

    def test_too_few_frames_rejected(self):
        result = run_delivery(make_segments(n_frames=48),
                              constant_trace(mbps(100)))
        with pytest.raises(NetworkError):
            DeliveredNetworkModel(result, 480)


class TestNetworkConfigValidation:
    def test_defaults_valid(self):
        NetworkConfig()
        NetworkConfig(mode="trace")

    @pytest.mark.parametrize("kwargs", [
        dict(mode="wormhole"),
        dict(trace_kind="carrier-pigeon"),
        dict(trace_kind="file"),  # no path
        dict(mean_bandwidth=-1.0),
        dict(segment_seconds=0.0),
        dict(ladder=()),
        dict(ladder=(3e6, 2e6)),
        dict(abr="oracle"),
        dict(abr_fixed_rung=99),
        dict(download_mode="sideways"),
        dict(preroll_frames=700),  # exceeds max_buffered_frames
    ])
    def test_rejections(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkConfig(**kwargs)


class TestSessionDeliveryIntegration:
    CONFIG = SimulationConfig(network=NetworkConfig(
        mode="trace", trace_kind="constant"))

    def test_stalls_come_from_buffer_occupancy(self):
        fat = SimulationConfig(network=replace(
            self.CONFIG.network, mean_bandwidth=mbps(200)))
        thin = SimulationConfig(network=replace(
            self.CONFIG.network, mean_bandwidth=mbps(2.0),
            abr="fixed", abr_fixed_rung=1))
        events = [Play(workload("V8"), 96)]
        rich = simulate_session(events, BASELINE, config=fat, seed=1)
        poor = simulate_session(events, BASELINE, config=thin, seed=1)
        # The legacy arithmetic stub would give both the same stall;
        # buffer occupancy makes the starved link stall far longer.
        assert poor.stall_seconds > rich.stall_seconds
        assert rich.stall_seconds > 0.0  # startup is never free
        legacy = simulate_session(events, BASELINE, seed=1)
        assert rich.stall_seconds != pytest.approx(legacy.stall_seconds)

    def test_network_energy_accounted(self):
        result = simulate_session([Play(workload("V8"), 96)], BASELINE,
                                  config=self.CONFIG, seed=1)
        assert result.network_energy > 0.0
        assert len(result.deliveries) == 1
        assert result.total_energy >= (result.playback_energy
                                       + result.network_energy)

    def test_deterministic(self):
        events = [Play(workload("V8"), 72),
                  Play(workload("V1"), 72, seek=True)]
        a = simulate_session(events, RACE_TO_SLEEP, config=self.CONFIG,
                             seed=4)
        b = simulate_session(events, RACE_TO_SLEEP, config=self.CONFIG,
                             seed=4)
        assert a.total_energy == b.total_energy
        assert a.stall_seconds == b.stall_seconds
        assert a.network_energy == b.network_energy

    def test_legacy_mode_untouched(self):
        result = simulate_session([Play(workload("V8"), 96)], BASELINE,
                                  seed=1)
        assert result.network_energy == 0.0
        assert result.deliveries == []


class TestDeadTailDelivery:
    """A trace that dies mid-session: fatal without a fault plan, a
    deterministic per-attempt timeout with one (the retry that spans
    the dead tail must not depend on where in the trace it lands)."""

    def _dead_tail_trace(self):
        from repro.network import BandwidthTrace

        return BandwidthTrace((0.0, 6.0), (mbps(24.0), 0.0),
                              name="dead-tail")

    def test_fault_free_dead_tail_still_raises(self):
        with pytest.raises(NetworkError, match="no bandwidth left"):
            run_delivery(make_segments(n_frames=3600),
                         self._dead_tail_trace())

    def test_dead_tail_times_out_deterministically(self):
        from repro.config import FaultConfig
        from repro.faults import FaultPlan

        plan = FaultPlan(FaultConfig(segment_timeout=2.0, max_retries=1,
                                     retry_backoff=0.25))
        runs = [run_delivery(make_segments(n_frames=3600),
                             self._dead_tail_trace(), faults=plan)
                for _ in range(2)]
        result = runs[0]
        # Segments requested after t=6 see an infinite transfer; each
        # attempt must be charged exactly the per-attempt timeout and
        # then abandoned after the bounded retries.
        assert result.timeouts > 0
        assert result.abandoned_segments > 0
        dead = [c for c in result.chunks if c.abandoned]
        assert dead and all(c.size_bytes == 0 for c in dead)
        # Busy windows stay finite: the timeout bounded every attempt.
        assert all(c.finish - c.start < 1e9 for c in result.chunks)
        assert runs[0] == runs[1]  # bit-identical accounting
