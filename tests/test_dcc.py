"""Tests for the Delta Colour Compression baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.compression import compressed_sizes, dcc_ratio
from repro.errors import GeometryError


class TestCompressedSizes:
    def test_flat_block_compresses_hard(self):
        flat = np.tile(np.asarray([[9, 9, 9]], dtype=np.uint8), (1, 16))
        size = compressed_sizes(flat)[0]
        assert size == 4  # header + base, zero payload bits

    def test_smooth_block_compresses_partially(self):
        ramp = (np.arange(48) // 3).astype(np.uint8).reshape(1, 48)
        size = compressed_sizes(ramp)[0]
        assert 4 < size < 48

    def test_noise_block_does_not_compress(self, rng):
        noise = rng.integers(0, 256, size=(1, 48), dtype=np.uint8)
        assert compressed_sizes(noise)[0] == 48  # capped at raw

    def test_wraparound_deltas_are_small(self):
        # 254 vs 2: distance 4 on the mod-256 ring, not 252.
        wrapped = np.tile(np.asarray([[254, 254, 254]], dtype=np.uint8),
                          (1, 16))
        wrapped[0, 3:6] = 2
        # The same distance without wraparound help: 126 vs 2 (124).
        far = np.tile(np.asarray([[126, 126, 126]], dtype=np.uint8), (1, 16))
        far[0, 3:6] = 2
        assert compressed_sizes(wrapped)[0] < compressed_sizes(far)[0]
        assert compressed_sizes(wrapped)[0] < 48

    @given(arrays(np.uint8, (5, 48)))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_raw(self, blocks):
        sizes = compressed_sizes(blocks)
        assert (sizes <= 48).all()
        assert (sizes >= 4).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(GeometryError):
            compressed_sizes(np.zeros((2, 47), dtype=np.uint8))
        with pytest.raises(GeometryError):
            compressed_sizes(np.zeros((2, 48), dtype=np.float32))


class TestDccRatio:
    def test_flat_frame_ratio(self):
        flat = np.tile(np.asarray([[1, 2, 3]], dtype=np.uint8), (100, 16))
        assert dcc_ratio(flat) == pytest.approx(4 / 48)

    def test_synthetic_content_is_compressible(self, video_config):
        """The generator's smooth textures must be DCC-compressible
        (real video is), while noise stays incompressible."""
        from repro.video import SyntheticVideo, workload
        frames = list(SyntheticVideo(video_config, workload("V8"), seed=2,
                                     n_frames=4))
        ratio = dcc_ratio(frames[-1].blocks)
        assert 0.3 < ratio < 0.95
