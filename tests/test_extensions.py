"""Tests for the Sec. 6.4 extension pipelines and the Sec. 7
related-work baseline."""

from __future__ import annotations

import pytest

from repro.config import (
    DecoderConfig,
    SimulationConfig,
)
from repro.core.pipelines import (
    ProducerConsumerPipeline,
    RecordingPipeline,
    RenderPipeline,
)
from repro.core.related_work import (
    SlackPredictor,
    power_at_frequency,
    simulate_slack_dvfs,
)
from repro.video import SyntheticVideo, workload


@pytest.fixture
def tiny_cfg(video_config):
    return SimulationConfig(video=video_config)


@pytest.fixture
def frames(tiny_cfg):
    return list(SyntheticVideo(tiny_cfg.video, workload("V8"), seed=4,
                               n_frames=12))


class TestExtensionPipelines:
    def test_render_pipeline_saves_traffic(self, tiny_cfg, frames):
        report = RenderPipeline(tiny_cfg).run(iter(frames))
        assert report.frames == 12
        assert report.write_savings > 0.05
        assert report.total_savings > 0.0

    def test_recording_reads_more_than_rendering(self, tiny_cfg, frames):
        recording = RecordingPipeline(tiny_cfg).run(iter(frames))
        rendering = RenderPipeline(tiny_cfg).run(iter(frames))
        assert recording.raw_read_lines > rendering.raw_read_lines
        assert recording.mach_read_lines > rendering.mach_read_lines

    def test_raw_accounting(self, tiny_cfg, frames):
        report = RenderPipeline(tiny_cfg).run(iter(frames))
        assert report.raw_write_bytes == 12 * tiny_cfg.video.frame_bytes
        lines = -(-tiny_cfg.video.frame_bytes // 64)
        assert report.raw_read_lines == 12 * lines

    def test_consumer_must_read(self, tiny_cfg):
        with pytest.raises(ValueError):
            ProducerConsumerPipeline(tiny_cfg, consumer_reads_per_frame=0)

    def test_empty_stream(self, tiny_cfg):
        report = RenderPipeline(tiny_cfg).run(iter([]))
        assert report.frames == 0
        assert report.total_savings == 0.0


class TestPowerCurve:
    def test_hits_measured_points(self):
        config = DecoderConfig()
        assert power_at_frequency(config, config.low_freq) == pytest.approx(
            config.low_freq_power)
        assert power_at_frequency(config, config.high_freq) == pytest.approx(
            config.high_freq_power)

    def test_monotonic(self):
        config = DecoderConfig()
        powers = [power_at_frequency(config, f * 1e6)
                  for f in (100, 150, 200, 250, 300)]
        assert powers == sorted(powers)


class TestSlackPredictor:
    def test_no_history_no_prediction(self):
        assert SlackPredictor().predict() is None

    def test_windowed_max(self):
        predictor = SlackPredictor(window=2, margin=1.0)
        predictor.observe(10.0)
        predictor.observe(20.0)
        predictor.observe(5.0)  # 10.0 falls out of the window
        assert predictor.predict() == pytest.approx(20.0)

    def test_margin_applied(self):
        predictor = SlackPredictor(window=4, margin=1.5)
        predictor.observe(10.0)
        assert predictor.predict() == pytest.approx(15.0)


class TestSlackDvfs:
    def test_deterministic(self):
        a = simulate_slack_dvfs(workload("V6"), 48, seed=3)
        b = simulate_slack_dvfs(workload("V6"), 48, seed=3)
        assert a.vd_energy == b.vd_energy
        assert a.drops == b.drops

    def test_scales_down_on_easy_content(self):
        result = simulate_slack_dvfs(workload("V1"), 64, seed=3)
        config = DecoderConfig()
        assert result.mean_frequency < config.high_freq

    def test_drops_on_complexity_spikes(self):
        # Scene-cut-heavy content defeats the history predictor.
        drops = sum(simulate_slack_dvfs(workload(k), 96, seed=7).drops
                    for k in ("V1", "V6", "V8"))
        assert drops > 0

    def test_high_floor_prevents_scaling(self):
        config = DecoderConfig()
        pinned = simulate_slack_dvfs(workload("V1"), 48, seed=3,
                                     min_frequency=config.high_freq)
        assert pinned.mean_frequency == pytest.approx(config.high_freq)

    def test_energy_positive_and_bounded(self):
        result = simulate_slack_dvfs(workload("V8"), 48, seed=3)
        assert 0 < result.vd_energy < 1.0  # under a joule for 48 frames
