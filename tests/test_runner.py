"""Tests for the supervised parallel experiment runner."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import BASELINE, GAB
from repro.errors import ReproError, RunnerError
from repro.runner import MatrixResult, normalized_matrix, run_matrix


class TestRunMatrix:
    def test_inline_matrix(self):
        results = run_matrix(videos=["V8"], schemes=(BASELINE, GAB),
                             n_frames=16, seed=2)
        assert set(results) == {("V8", "Baseline"), ("V8", "GAB")}
        assert results["V8", "GAB"].n_frames == 16

    def test_parallel_matches_inline(self):
        kwargs = dict(videos=["V8", "V1"], schemes=(BASELINE, GAB),
                      n_frames=16, seed=2)
        inline = run_matrix(processes=1, **kwargs)
        parallel = run_matrix(processes=2, **kwargs)
        assert set(inline) == set(parallel)
        for key in inline:
            assert inline[key].energy.total == pytest.approx(
                parallel[key].energy.total)
            assert inline[key].drops == parallel[key].drops

    def test_normalized_matrix(self):
        results = run_matrix(videos=["V8"], schemes=(BASELINE, GAB),
                             n_frames=16, seed=2)
        table = normalized_matrix(results)
        assert table["V8"]["Baseline"] == pytest.approx(1.0)
        assert 0 < table["V8"]["GAB"] < 1.5

    def test_normalized_matrix_names_missing_baseline(self):
        results = run_matrix(videos=["V8"], schemes=(GAB,),
                             n_frames=16, seed=2)
        with pytest.raises(ReproError, match="Baseline.*V8|V8.*Baseline"):
            normalized_matrix(results)


class TestSupervision:
    def test_crashing_job_isolated(self):
        matrix = run_matrix(videos=["V8", "BOGUS"], schemes=(BASELINE,),
                            n_frames=16, seed=2, processes=1)
        assert set(matrix) == {("V8", "Baseline")}
        assert ("BOGUS", "Baseline") in matrix.errors
        assert "BOGUS" in matrix.errors["BOGUS", "Baseline"]
        assert not matrix.ok

    def test_crashing_job_isolated_in_pool(self):
        matrix = run_matrix(videos=["V8", "BOGUS"],
                            schemes=(BASELINE, GAB),
                            n_frames=16, seed=2, processes=2)
        assert set(matrix) == {("V8", "Baseline"), ("V8", "GAB")}
        assert len(matrix.errors) == 2

    def test_isolation_off_raises(self):
        with pytest.raises(RunnerError, match="BOGUS"):
            run_matrix(videos=["BOGUS"], schemes=(BASELINE,),
                       n_frames=16, seed=2, processes=1,
                       isolate_errors=False)

    def test_retries_bounded(self):
        matrix = run_matrix(videos=["BOGUS"], schemes=(BASELINE,),
                            n_frames=16, seed=2, processes=1,
                            max_retries=2)
        assert ("BOGUS", "Baseline") in matrix.errors
        with pytest.raises(RunnerError):
            run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                       max_retries=-1)

    def test_mapping_protocol(self):
        matrix = run_matrix(videos=["V8"], schemes=(BASELINE,),
                            n_frames=16, seed=2, processes=1)
        assert isinstance(matrix, MatrixResult)
        assert len(matrix) == 1
        assert ("V8", "Baseline") in matrix
        assert matrix.get(("V8", "nope")) is None
        assert dict(matrix.items())


class TestCheckpointing:
    def test_resume_is_bit_identical(self, tmp_path):
        ckpt = str(tmp_path / "matrix.json")
        kwargs = dict(schemes=(BASELINE, GAB), n_frames=16, seed=2,
                      processes=1)
        # "Killed" run: only V8 finished before the interruption.
        run_matrix(videos=["V8"], checkpoint=ckpt, **kwargs)
        resumed = run_matrix(videos=["V8", "V1"], checkpoint=ckpt,
                             **kwargs)
        fresh = run_matrix(videos=["V8", "V1"], **kwargs)
        assert sorted(resumed.resumed) == [("V8", "Baseline"),
                                           ("V8", "GAB")]
        assert set(resumed) == set(fresh)
        for key in fresh:
            assert resumed[key].energy.total == fresh[key].energy.total
            assert resumed[key].drops == fresh[key].drops
            assert (resumed[key].timeline.finish
                    == fresh[key].timeline.finish).all()
            assert resumed[key].mem_stats.by_agent \
                == fresh[key].mem_stats.by_agent

    def test_checkpoint_written_atomically(self, tmp_path):
        ckpt = str(tmp_path / "matrix.json")
        run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, checkpoint=ckpt)
        assert os.path.exists(ckpt)
        assert not os.path.exists(ckpt + ".tmp")
        data = json.loads(open(ckpt).read())
        assert data["version"] == 1
        assert len(data["completed"]) == 1

    def test_mismatched_checkpoint_quarantined(self, tmp_path):
        ckpt = str(tmp_path / "matrix.json")
        run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, checkpoint=ckpt)
        matrix = run_matrix(videos=["V8"], schemes=(BASELINE,),
                            n_frames=16, seed=3, processes=1,
                            checkpoint=ckpt)
        assert set(matrix) == {("V8", "Baseline")}
        assert not matrix.resumed
        assert list(matrix.quarantined) == [ckpt + ".corrupt"]
        assert "different run" in matrix.quarantined[ckpt + ".corrupt"]
        assert os.path.exists(ckpt + ".corrupt")
        # The fresh run rewrote a valid checkpoint for the new matrix.
        data = json.loads(open(ckpt).read())
        assert data["meta"]["seed"] == 3

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        ckpt = tmp_path / "matrix.json"
        ckpt.write_text("{not json")
        matrix = run_matrix(videos=["V8"], schemes=(BASELINE,),
                            n_frames=16, seed=2, processes=1,
                            checkpoint=str(ckpt))
        assert set(matrix) == {("V8", "Baseline")}
        quarantine = str(ckpt) + ".corrupt"
        assert list(matrix.quarantined) == [quarantine]
        assert "not valid JSON" in matrix.quarantined[quarantine]
        assert open(quarantine).read() == "{not json"

    def test_truncated_checkpoint_starts_fresh(self, tmp_path):
        ckpt = str(tmp_path / "matrix.json")
        kwargs = dict(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                      seed=2, processes=1)
        run_matrix(checkpoint=ckpt, **kwargs)
        text = open(ckpt).read()
        with open(ckpt, "w") as handle:
            handle.write(text[:len(text) // 2])  # simulated power cut
        resumed = run_matrix(checkpoint=ckpt, **kwargs)
        fresh = run_matrix(**kwargs)
        assert not resumed.resumed
        assert resumed.quarantined
        key = ("V8", "Baseline")
        assert resumed[key].energy.total == fresh[key].energy.total

    def test_invalid_entry_quarantined(self, tmp_path):
        ckpt = str(tmp_path / "matrix.json")
        run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, checkpoint=ckpt)
        data = json.loads(open(ckpt).read())
        del data["completed"][0]["result"]["energy"]
        with open(ckpt, "w") as handle:
            json.dump(data, handle)
        matrix = run_matrix(videos=["V8"], schemes=(BASELINE,),
                            n_frames=16, seed=2, processes=1,
                            checkpoint=ckpt)
        assert set(matrix) == {("V8", "Baseline")}
        assert not matrix.resumed
        reason = matrix.quarantined[ckpt + ".corrupt"]
        assert "completed[0]" in reason


class TestRetryBackoff:
    def _recorded_sleeps(self, monkeypatch):
        import repro.runner as runner_mod
        recorded = []
        monkeypatch.setattr(runner_mod.time, "sleep",
                            lambda s: recorded.append(s))
        return recorded

    def test_backoff_schedule_is_seeded_and_exponential(
            self, monkeypatch):
        from repro.backoff import SITE_MATRIX_RETRY, backoff_delay
        recorded = self._recorded_sleeps(monkeypatch)
        run_matrix(videos=["BOGUS"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, max_retries=2,
                   retry_backoff=0.5, retry_backoff_cap=8.0)
        expected = [backoff_delay(2, SITE_MATRIX_RETRY, 0, attempt,
                                  base=0.5, cap=8.0)
                    for attempt in range(2)]
        assert recorded == expected
        # Monotone growth (jitter never outweighs the doubling) and a
        # reproducible schedule on rerun.
        assert recorded[0] < recorded[1]
        rerun = self._recorded_sleeps(monkeypatch)
        run_matrix(videos=["BOGUS"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, max_retries=2,
                   retry_backoff=0.5, retry_backoff_cap=8.0)
        assert rerun == expected

    def test_zero_base_disables_backoff(self, monkeypatch):
        recorded = self._recorded_sleeps(monkeypatch)
        run_matrix(videos=["BOGUS"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, max_retries=2,
                   retry_backoff=0.0)
        assert recorded == []

    def test_no_backoff_without_failures(self, monkeypatch):
        recorded = self._recorded_sleeps(monkeypatch)
        run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                   seed=2, processes=1, max_retries=3)
        assert recorded == []


class TestCheckpointEdgeCases:
    def test_superset_checkpoint_stale_jobs_ignored(self, tmp_path):
        """Meta matches but the checkpoint holds a strict superset of
        the requested matrix: stale jobs must be ignored, not merged."""
        ckpt = str(tmp_path / "matrix.json")
        kwargs = dict(schemes=(BASELINE, GAB), n_frames=16, seed=2,
                      processes=1)
        run_matrix(videos=["V8", "V1"], checkpoint=ckpt, **kwargs)
        matrix = run_matrix(videos=["V8"], checkpoint=ckpt, **kwargs)
        assert set(matrix) == {("V8", "Baseline"), ("V8", "GAB")}
        assert sorted(matrix.resumed) == [("V8", "Baseline"),
                                          ("V8", "GAB")]
        assert not matrix.quarantined
        assert all(video == "V8" for video, _ in matrix)

    def test_readonly_checkpoint_dir_raises(self, tmp_path,
                                            monkeypatch):
        """A corrupt checkpoint that cannot be quarantined (read-only
        directory) must raise instead of silently dropping durability.

        The rename failure is injected because the suite may run as
        root, which a read-only directory bit does not stop.
        """
        import repro.checkpointing as ckpt_mod
        ckpt = tmp_path / "matrix.json"
        ckpt.write_text("{not json")

        def denied(src, dst):
            raise OSError(30, "Read-only file system", src)

        monkeypatch.setattr(ckpt_mod.os, "replace", denied)
        with pytest.raises(RunnerError, match="cannot quarantine"):
            run_matrix(videos=["V8"], schemes=(BASELINE,), n_frames=16,
                       seed=2, processes=1, checkpoint=str(ckpt))
        # The evidence file must still be in place, untouched.
        assert ckpt.read_text() == "{not json"
