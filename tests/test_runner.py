"""Tests for the parallel experiment runner."""

from __future__ import annotations

import pytest

from repro.config import BASELINE, GAB
from repro.runner import normalized_matrix, run_matrix


class TestRunMatrix:
    def test_inline_matrix(self):
        results = run_matrix(videos=["V8"], schemes=(BASELINE, GAB),
                             n_frames=16, seed=2)
        assert set(results) == {("V8", "Baseline"), ("V8", "GAB")}
        assert results["V8", "GAB"].n_frames == 16

    def test_parallel_matches_inline(self):
        kwargs = dict(videos=["V8", "V1"], schemes=(BASELINE, GAB),
                      n_frames=16, seed=2)
        inline = run_matrix(processes=1, **kwargs)
        parallel = run_matrix(processes=2, **kwargs)
        assert set(inline) == set(parallel)
        for key in inline:
            assert inline[key].energy.total == pytest.approx(
                parallel[key].energy.total)
            assert inline[key].drops == parallel[key].drops

    def test_normalized_matrix(self):
        results = run_matrix(videos=["V8"], schemes=(BASELINE, GAB),
                             n_frames=16, seed=2)
        table = normalized_matrix(results)
        assert table["V8"]["Baseline"] == pytest.approx(1.0)
        assert 0 < table["V8"]["GAB"] < 1.5
