"""Tests for repro.realtime: link, congestion, recovery, chaos.

The load-bearing properties:

* emergent loss/delay are a pure function of (seed, link params,
  traffic) — no FaultPlan required, no iteration-order dependence;
* injected packet erasures compose with emergent queue loss without
  reshuffling it (open loop: the erased packet still queues);
* ``RealtimeConfig(enabled=False)`` leaves paper-mode results
  bit-identical;
* chaos campaigns are bit-identical at any shard count.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.config import (
    GAB,
    FaultConfig,
    RealtimeConfig,
    SimulationConfig,
)
from repro.core.pipeline import simulate
from repro.core.race_to_sleep import REALTIME_LADDER_STEPS, DeadlineLadder
from repro.errors import ConfigError, RealtimeError
from repro.faults import FaultPlan
from repro.realtime import (
    CHAOS_REGIMES,
    BottleneckLink,
    ChaosResult,
    DelayLossController,
    apply_fec,
    parity_count,
    realtime_playback,
    run_chaos,
    simulate_realtime,
)
from repro.realtime.session import RealtimeResult
from repro.units import MBPS, MS
from repro.video import workload


def _rt(**kwargs) -> RealtimeConfig:
    base = dict(enabled=True, seed=5)
    base.update(kwargs)
    return RealtimeConfig(**base)


def _sim(rt: RealtimeConfig, **kwargs) -> SimulationConfig:
    return replace(SimulationConfig(), realtime=rt, **kwargs)


class TestRealtimeConfig:
    def test_default_inert(self):
        assert not RealtimeConfig().enabled

    @pytest.mark.parametrize("kwargs", [
        dict(latency_budget=0.0),
        dict(mtu_bytes=8),
        dict(queue_bytes=100, mtu_bytes=1200),
        dict(red_min_fill=0.9, red_max_fill=0.5),
        dict(rate_schedule=((2.0, 1.0), (1.0, 0.5))),
        dict(rate_schedule=((1.0, -0.5),)),
        dict(min_rate=5 * MBPS, start_rate=1 * MBPS),
        dict(delay_target=0.0),
        dict(recovery="arq"),
        dict(fec_group=0),
        dict(downscale_factor=1.5),
    ])
    def test_rejections(self, kwargs):
        with pytest.raises(ConfigError):
            RealtimeConfig(**kwargs)


class TestBottleneckLink:
    def test_needs_enabled(self):
        with pytest.raises(RealtimeError):
            BottleneckLink(RealtimeConfig())

    def test_unloaded_packet_sees_propagation_only(self):
        link = BottleneckLink(_rt(link_rate=10 * MBPS,
                                  propagation_delay=0.015))
        arrival, delay = link.send_packet(1.0, 0, 0, 0, 1200, False)
        # The packet's own service time counts as queueing delay.
        assert delay == pytest.approx(1200 / (10 * MBPS))
        assert arrival == pytest.approx(1.0 + delay + 0.015)

    def test_drain_integrates_rate_schedule(self):
        link = BottleneckLink(_rt(link_rate=1 * MBPS,
                                  rate_schedule=((1.0, 0.5),)))
        link.backlog = 1 * MBPS  # one second of full-rate service
        link.drain(1.0)
        assert link.backlog == pytest.approx(0.0)
        link.backlog = 1 * MBPS
        link.clock = 1.0
        link.drain(2.0)  # half rate now
        assert link.backlog == pytest.approx(0.5 * MBPS)

    def test_droptail_overflow(self):
        link = BottleneckLink(_rt(queue_bytes=2400, mtu_bytes=1200))
        outcome = link.send_burst(0.0, 0, [1200] * 3, 0, [False] * 3)
        assert link.overflow_drops == 1
        assert math.isinf(outcome.arrival[2])
        assert outcome.enqueued_bytes == 2400

    def test_dead_link_predicts_inf(self):
        link = BottleneckLink(_rt(rate_schedule=((0.0, 0.0),)))
        assert math.isinf(link.predict_arrival(0.0, 1200))
        assert math.isinf(link.queue_delay(0.0))

    def test_emergent_drops_deterministic(self):
        def drops(seed):
            link = BottleneckLink(_rt(seed=seed, link_rate=1 * MBPS,
                                      queue_bytes=12_000))
            pattern = []
            for f in range(40):
                out = link.send_burst(f * 0.01, f, [1200] * 8, 0,
                                      [False] * 8)
                pattern.append(tuple(out.arrival))
            return link.red_drops, link.overflow_drops, pattern

        assert drops(5) == drops(5)
        # A different seed reshuffles RED draws but not the physics:
        # the droptail count, which is backlog-driven, only moves if
        # RED drops change the backlog.
        assert drops(5) != drops(6)

    def test_injection_is_open_loop(self):
        """Injected erasures occupy the queue: for a fixed send
        pattern they cannot change which packets the queue drops."""
        def run(inject):
            link = BottleneckLink(_rt(link_rate=1 * MBPS,
                                      queue_bytes=12_000))
            plan = FaultPlan(FaultConfig(packet_loss=0.3, seed=11))
            for f in range(40):
                flags = [inject and plan.packet_lost(f, j, 0)
                         for j in range(8)]
                link.send_burst(f * 0.01, f, [1200] * 8, 0, flags)
            return link

        clean, injected = run(False), run(True)
        assert injected.red_drops == clean.red_drops
        assert injected.overflow_drops == clean.overflow_drops
        assert injected.injected_drops > 0
        assert clean.injected_drops == 0


class TestDelayLossController:
    def test_probes_up_when_clear(self):
        cc = DelayLossController(_rt())
        rate = cc.rate
        assert cc.observe(0.0, 0.0) == pytest.approx(rate * 1.04)

    def test_gradient_backoff(self):
        cfg = _rt()
        cc = DelayLossController(cfg)
        cc.observe(0.001, 0.0)
        rate = cc.rate
        cc.observe(0.001 + 2 * cfg.gradient_threshold, 0.0)
        assert cc.rate == pytest.approx(rate * cfg.decrease_factor)
        assert cc.overuse_events == 1

    def test_standing_queue_backoff(self):
        """A flat but large queue delay must still trip overuse — the
        controller targets an absolute delay, not just its slope."""
        cfg = _rt()
        cc = DelayLossController(cfg)
        cc.observe(2 * cfg.delay_target, 0.0)
        rate = cc.rate
        cc.observe(2 * cfg.delay_target, 0.0)  # gradient is now zero
        assert cc.rate == pytest.approx(rate * cfg.decrease_factor)

    def test_loss_backoff_proportional_and_floored(self):
        cc = DelayLossController(_rt())
        rate = cc.rate
        cc.observe(0.0, 0.2)
        assert cc.rate == pytest.approx(rate * 0.9)
        assert cc.loss_events == 1
        cc.observe(0.0, 1.0)  # 100% loss halves, never zeroes
        assert cc.rate == pytest.approx(rate * 0.9 * 0.5)

    def test_dead_link_is_maximal_overuse(self):
        cc = DelayLossController(_rt())
        rate = cc.rate
        cc.observe(math.inf, 0.0)
        assert cc.rate < rate

    def test_clamped_to_band(self):
        cfg = _rt()
        cc = DelayLossController(cfg)
        for _ in range(500):
            cc.observe(0.0, 0.0)
        assert cc.rate == cfg.max_rate
        for _ in range(500):
            cc.observe(math.inf, 1.0)
        assert cc.rate == cfg.min_rate


class TestFec:
    def test_parity_count(self):
        assert parity_count(0, 8) == 0
        assert parity_count(1, 8) == 1
        assert parity_count(8, 8) == 1
        assert parity_count(9, 8) == 2

    def test_single_loss_recovers_at_last_dependency(self):
        arrivals = [1.0, math.inf, 3.0, 2.0]
        out = apply_fec(arrivals, [5.0], group=4)
        assert out == [1.0, 5.0, 3.0, 2.0]

    def test_double_loss_unrecoverable(self):
        out = apply_fec([1.0, math.inf, math.inf], [5.0], group=3)
        assert math.isinf(out[1]) and math.isinf(out[2])

    def test_lost_parity_recovers_nothing(self):
        out = apply_fec([1.0, math.inf], [math.inf], group=2)
        assert math.isinf(out[1])

    def test_groups_independent(self):
        arrivals = [math.inf, 1.0, math.inf, math.inf]
        out = apply_fec(arrivals, [2.0, 3.0], group=2)
        assert out[0] == 2.0  # group 0 had one loss: recovered
        assert math.isinf(out[2]) and math.isinf(out[3])


class TestDeadlineLadder:
    def test_steps_exported(self):
        assert REALTIME_LADDER_STEPS == ("nominal", "downscale",
                                         "freeze", "skip")

    def test_least_degraded_first(self):
        ladder = DeadlineLadder(0.5, 0.1)
        # predict: fits only once scaled below 0.6x
        step, factor = ladder.choose(1.0, lambda f: 0.5 + f)
        assert (step, factor) == (1, 0.5)
        assert ladder.downscaled == 1 and ladder.degradation_steps == 1

    def test_skip_when_nothing_fits(self):
        ladder = DeadlineLadder(0.5, 0.1)
        step, factor = ladder.choose(1.0, lambda f: 10.0)
        assert (step, factor) == (3, 0.0)
        assert ladder.skipped == 1

    def test_nominal_costs_nothing(self):
        ladder = DeadlineLadder(0.5, 0.1)
        step, factor = ladder.choose(1.0, lambda f: 0.1)
        assert (step, factor) == (0, 1.0)
        assert ladder.degradation_steps == 0


#: A deliberately harsh link: deep periodic cliffs against a modest
#: budget, so emergent drops and ladder action both show up in a short
#: session.
_HARSH = dict(link_rate=3 * MBPS, queue_bytes=48_000,
              rate_schedule=((1.0, 0.12), (2.0, 1.0), (3.0, 0.12),
                             (4.0, 1.0)))


class TestSimulateRealtime:
    def test_requires_enabled(self):
        with pytest.raises(RealtimeError):
            simulate_realtime(SimulationConfig())

    def test_deterministic(self):
        cfg = _sim(_rt(**_HARSH))
        a = simulate_realtime(cfg, n_frames=240)
        b = simulate_realtime(cfg, n_frames=240)
        assert a.to_jsonable() == b.to_jsonable()

    def test_emergent_loss_without_fault_plan(self):
        # Ladder off: the sender keeps pushing full frames into the
        # cliff, so the queue itself must produce the losses.
        result = simulate_realtime(_sim(_rt(ladder=False, **_HARSH)),
                                   n_frames=240)
        assert result.overflow_drops + result.red_drops > 0
        assert result.injected_drops == 0
        assert result.total_energy > 0

    def test_ladder_prevents_emergent_drops(self):
        """The ladder pre-shrinks frames that would not fit, so the
        same harsh link stops dropping when it is on."""
        off = simulate_realtime(_sim(_rt(ladder=False, **_HARSH)),
                                n_frames=240)
        on = simulate_realtime(_sim(_rt(**_HARSH)), n_frames=240)
        assert (on.overflow_drops + on.red_drops
                < off.overflow_drops + off.red_drops)

    def test_injected_loss_composes(self):
        cfg = _sim(_rt(**_HARSH),
                   faults=FaultConfig(packet_loss=0.05, seed=3))
        result = simulate_realtime(cfg, n_frames=240)
        assert result.injected_drops > 0

    def test_ladder_engages_under_pressure(self):
        result = simulate_realtime(_sim(_rt(**_HARSH)), n_frames=240)
        assert result.degradation_steps > 0
        assert (result.downscaled_frames == int((result.step == 1).sum())
                and result.frozen_frames == int((result.step == 2).sum())
                and result.skipped_frames == int((result.step == 3).sum()))

    def test_json_round_trip(self):
        result = simulate_realtime(_sim(_rt(**_HARSH)), n_frames=120)
        back = RealtimeResult.from_jsonable(result.to_jsonable())
        assert back.to_jsonable() == result.to_jsonable()
        assert np.array_equal(back.completion, result.completion,
                              equal_nan=True)

    def test_recovery_modes_differ(self):
        runs = {}
        for mode in ("fec", "retx"):
            cfg = _sim(_rt(recovery=mode, propagation_delay=0.060,
                           loss_threshold=1.0),
                       faults=FaultConfig(packet_loss=0.15, seed=3))
            runs[mode] = simulate_realtime(cfg, n_frames=180)
        assert runs["fec"].parity_bytes > 0 and runs["fec"].retx_bytes == 0
        assert runs["retx"].retx_bytes > 0 and runs["retx"].parity_bytes == 0
        # A retransmission over a 120 ms RTT cannot make a 150 ms budget.
        assert (runs["fec"].deadline_miss_fraction
                < runs["retx"].deadline_miss_fraction)

    def test_overlay_feeds_concealment(self):
        result = simulate_realtime(_sim(_rt(**_HARSH)), n_frames=240)
        overlay = result.block_overlay()
        assert overlay  # the harsh link must have lost something
        run = realtime_playback(GAB, _sim(_rt(**_HARSH)), n_frames=240)
        assert run.concealed_blocks >= sum(len(v) for v in overlay.values())

    def test_availability_monotone(self):
        result = simulate_realtime(_sim(_rt(**_HARSH)), n_frames=240)
        times = result.availability_times()
        assert (np.diff(times) >= 0).all()
        assert np.isfinite(times).all()


class TestDisabledRealtimeIsInert:
    def test_paper_mode_bit_identical(self):
        """A disabled RealtimeConfig, however exotic, must leave the
        paper pipeline untouched."""
        exotic = RealtimeConfig(enabled=False, link_rate=1 * MBPS,
                                latency_budget=0.033, fec_group=2,
                                recovery="fec", seed=99)
        base = simulate(workload("V1"), GAB, n_frames=64, seed=3)
        other = simulate(workload("V1"), GAB, n_frames=64, seed=3,
                         config=_sim(exotic))
        assert base.energy.total == other.energy.total
        assert (base.timeline.finish == other.timeline.finish).all()
        assert base.concealed_blocks == other.concealed_blocks


class TestChaos:
    def _campaign(self, shards):
        return run_chaos(regimes=CHAOS_REGIMES[:2], videos=("V1",),
                         sessions=2, n_frames=60, fleet_frame_cap=90,
                         seed=3, shards=shards)

    def test_shard_invariant(self):
        one = self._campaign(1)
        three = self._campaign(3)
        assert one.to_jsonable() == three.to_jsonable()

    def test_json_round_trip(self):
        result = self._campaign(2)
        back = ChaosResult.from_jsonable(result.to_jsonable())
        assert back.to_jsonable() == result.to_jsonable()

    def test_report_covers_all_cells(self):
        report = self._campaign(1).report()
        for regime in ("calm", "bursty-loss"):
            assert regime in report
        for cohort in ("matrix", "fleet"):
            assert cohort in report

    def test_rejects_bad_shards(self):
        with pytest.raises(RealtimeError):
            self._campaign(0)
