"""Property tests: the SoA kernels are bit-identical to their scalar
references.

The vectorized hot path (:mod:`repro.core.soa`, the batched CRC tables,
the array display cache, the SoA memory controller, and the batched
write engine) is accepted only on exact equivalence: Hypothesis draws
random touch sequences, frames, and cache shapes, and every drawn case
must reproduce the scalar replay byte for byte — hits, providers,
residents, stats, layouts, and full :class:`RunResult` payloads.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate
from repro.config import (
    GAB,
    GAB_DCC,
    MAB,
    DramConfig,
    SimulationConfig,
    VideoConfig,
)
from repro.core.soa import count_smaller_left, lru_touch_classify
from repro.core.writeback import WritebackEngine
from repro.display import simulate_direct_mapped, simulate_direct_mapped_array
from repro.hashing.crc import crc16, crc32, crc16_blocks, crc32_blocks, crc_pair_blocks
from repro.memory.controller import MemoryController
from repro.memory.rowbuffer import RowBufferModel
from repro.video.synthesis import SyntheticVideo
from repro.video.workloads import workload

_TINY = SimulationConfig(video=VideoConfig(width=64, height=32))

_MACH_SCHEMES = {"MAB": MAB, "GAB": GAB, "GAB+DCC": GAB_DCC}


def _assert_equal(a, b, path=""):
    """Recursive exact equality over dataclasses / arrays / containers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b)), path
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), path
        for field in dataclasses.fields(a):
            _assert_equal(getattr(a, field.name), getattr(b, field.name),
                          f"{path}.{field.name}")
        return
    if isinstance(a, dict):
        assert set(a) == set(b), path
        for key in a:
            _assert_equal(a[key], b[key], f"{path}[{key!r}]")
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_equal(x, y, f"{path}[{i}]")
        return
    assert a == b, (path, a, b)


class TestCountSmallerLeft:
    @given(st.lists(st.integers(0, 10_000), min_size=0, max_size=200,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_matches_quadratic_reference(self, values):
        arr = np.asarray(values, dtype=np.int64)
        expected = [int(np.sum(arr[:i] < arr[i])) for i in range(len(arr))]
        assert count_smaller_left(arr).tolist() == expected

    @given(st.permutations(range(97)))
    @settings(max_examples=20, deadline=None)
    def test_bound_variant_matches(self, perm):
        arr = np.asarray(perm, dtype=np.int64)
        assert np.array_equal(count_smaller_left(arr, bound=len(arr)),
                              count_smaller_left(arr))


def _lru_reference(sets, keys, ways):
    """Scalar insert-on-miss LRU replay (OrderedDict per set)."""
    state = {}
    hits, providers = [], []
    for i, (s, k) in enumerate(zip(sets, keys)):
        entries = state.setdefault(s, OrderedDict())
        if k in entries:
            hits.append(True)
            providers.append(entries[k])
            entries.move_to_end(k)
        else:
            hits.append(False)
            providers.append(-1)
            if len(entries) >= ways:
                entries.popitem(last=False)
            entries[k] = i
    resident_touch, resident_rank = [], []
    for s in sorted(state):
        for rank, insert_idx in enumerate(reversed(state[s].values())):
            resident_touch.append(insert_idx)
            resident_rank.append(rank)
    return hits, providers, resident_touch, resident_rank


class TestLruTouchClassify:
    @given(keys=st.lists(st.integers(0, 60), min_size=0, max_size=160),
           n_sets=st.sampled_from([1, 2, 4, 8]),
           ways=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_lru(self, keys, n_sets, ways):
        keys = np.asarray(keys, dtype=np.int64)
        sets = keys % n_sets  # a key maps to exactly one set
        got = lru_touch_classify(sets, keys, ways)
        hits, providers, res_touch, res_rank = _lru_reference(
            sets.tolist(), keys.tolist(), ways)
        assert got.hits.tolist() == hits
        assert got.provider.tolist() == providers
        assert got.resident_touch.tolist() == res_touch
        assert got.resident_rank.tolist() == res_rank


class TestCrcBlocks:
    @given(rows=st.integers(0, 12), cols=st.integers(0, 80),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_blockwise_matches_scalar(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        want32 = [crc32(row.tobytes()) for row in blocks]
        want16 = [crc16(row.tobytes()) for row in blocks]
        assert crc32_blocks(blocks).tolist() == want32
        assert crc16_blocks(blocks).tolist() == want16
        pair32, pair16 = crc_pair_blocks(blocks)
        assert pair32.tolist() == want32
        assert pair16.tolist() == want16
        # The scalar crc32 itself is zlib's.
        assert want32 == [zlib.crc32(row.tobytes()) for row in blocks]


class TestDisplayCacheArray:
    @given(windows=st.lists(
        st.lists(st.integers(0, 40), min_size=0, max_size=60),
        min_size=1, max_size=4),
        n_slots=st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_reference(self, windows, n_slots):
        state_arr = np.full(n_slots, -1, dtype=np.int64)
        state_dict = None
        for window in windows:
            keys = np.asarray(window, dtype=np.int64)
            hits_arr = simulate_direct_mapped_array(keys, n_slots, state_arr)
            hits_dict, state_dict = simulate_direct_mapped(
                keys, n_slots, state_dict)
            assert np.array_equal(hits_arr, hits_dict)
        for slot in range(n_slots):
            want = (state_dict or {}).get(slot)
            got = int(state_arr[slot])
            assert got == (-1 if want is None else want)


class TestMemoryControllerEquivalence:
    @given(n=st.integers(1, 120), seed=st.integers(0, 2**31 - 1),
           quantum_on=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_matches_rowbuffer_replay(self, n, seed, quantum_on):
        dram = DramConfig()
        if not quantum_on:
            dram = dataclasses.replace(dram, scheduler_quantum=0.0)
        rng = np.random.default_rng(seed)
        times = rng.uniform(0.0, 0.05, size=n)
        lines = rng.integers(0, 1 << 22, size=n, dtype=np.int64) * 64
        writes = rng.integers(0, 2, size=n).astype(bool)
        ctrl = MemoryController(dram)
        # Replay the same scheduling order through the scalar per-bank
        # model; banks are independent, so any bank-grouped order that
        # is time-sorted inside each (bank, quantum, row) run gives the
        # canonical activation count.
        banks, rows = ctrl.mapper.map_lines(lines)
        if dram.scheduler_quantum > 0:
            quanta = (times / dram.scheduler_quantum).astype(np.int64)
            order = np.lexsort((times, rows, quanta, banks))
        else:
            order = np.lexsort((times, banks))
        scalar = RowBufferModel(dram)
        for i in order:
            scalar.access(int(banks[i]), int(rows[i]), float(times[i]))
        ctrl.process_window(times, lines, writes)
        assert ctrl.stats.activations == scalar.activations
        assert ctrl.stats.bursts == scalar.accesses


def _random_stream(cfg, profile_key, n_frames, seed):
    return list(SyntheticVideo(
        cfg.video, workload(profile_key), seed=seed, n_frames=n_frames,
        complexity_sigma=cfg.calibration.complexity_sigma))


class TestWritebackEquivalence:
    @given(scheme_name=st.sampled_from(sorted(_MACH_SCHEMES)),
           unbounded=st.booleans(),
           profile_key=st.sampled_from(["V1", "V5", "V8"]),
           seed=st.integers(0, 5))
    @settings(max_examples=12, deadline=None)
    def test_kernel_matches_scalar_engine(self, scheme_name, unbounded,
                                          profile_key, seed):
        scheme = _MACH_SCHEMES[scheme_name]
        cfg = _TINY
        stream = _random_stream(cfg, profile_key, 6, seed)
        fast = WritebackEngine(cfg.video, cfg.mach, scheme,
                               cfg.dram.line_bytes,
                               unbounded_mach=unbounded, vectorized=True)
        slow = WritebackEngine(cfg.video, cfg.mach, scheme,
                               cfg.dram.line_bytes,
                               unbounded_mach=unbounded, vectorized=False)
        base = 32 * 1024 * 1024
        for i, frame in enumerate(stream):
            slot = base + (i % 3) * 4 * 1024 * 1024
            got = fast.process_frame(frame, slot)
            want = slow.process_frame(frame, slot)
            _assert_equal(got.layout, want.layout, "layout")
            assert np.array_equal(got.write_lines, want.write_lines)
            _assert_equal(got.matches, want.matches, "matches")
            assert got.bytes_written == want.bytes_written
            if want.dump is not None:
                assert dict(got.dump.table) == dict(want.dump.table)
        _assert_equal(fast.ring.stats.__dict__, slow.ring.stats.__dict__,
                      "ring.stats")


class TestPipelineEquivalence:
    @given(scheme_name=st.sampled_from(sorted(_MACH_SCHEMES)),
           buffer_policy=st.sampled_from(["lazy", "eager"]),
           seed=st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_run_result_identical(self, scheme_name, buffer_policy, seed):
        scheme = _MACH_SCHEMES[scheme_name]
        kwargs = dict(n_frames=12, config=_TINY, seed=seed,
                      buffer_policy=buffer_policy)
        fast = simulate(workload("V8"), scheme, vectorized=True, **kwargs)
        slow = simulate(workload("V8"), scheme, vectorized=False, **kwargs)
        _assert_equal(fast, slow, "RunResult")
