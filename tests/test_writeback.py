"""Tests for the content-caching write engine."""

from __future__ import annotations

import numpy as np

from repro.config import GAB, MAB, BASELINE, DCC_ONLY, MachConfig, VideoConfig
from repro.core.layout import LayoutMode, RecordKind
from repro.core.writeback import WritebackEngine, slot_bytes_needed
from repro.video.frame import DecodedFrame, FrameType


def tiny_video() -> VideoConfig:
    return VideoConfig(width=32, height=16)  # 32 blocks of 4x4


def mach_config(**overrides) -> MachConfig:
    defaults = dict(num_machs=4, entries_per_mach=16, ways=4)
    defaults.update(overrides)
    return MachConfig(**defaults)


def frame_of(blocks: np.ndarray, index=0) -> DecodedFrame:
    return DecodedFrame(index=index, frame_type=FrameType.P,
                        blocks=blocks, complexity=1.0, encoded_bits=1000)


def flat_frame(video: VideoConfig, color=(10, 20, 30), index=0) -> DecodedFrame:
    pixel = np.asarray(color, dtype=np.uint8)
    blocks = np.tile(pixel, (video.blocks_per_frame, video.block_bytes // 3))
    return frame_of(blocks, index)


def noise_frame(video: VideoConfig, seed=0, index=0) -> DecodedFrame:
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, 256, (video.blocks_per_frame,
                                   video.block_bytes), dtype=np.uint8)
    return frame_of(blocks, index)


class TestRawWriteback:
    def test_raw_layout(self):
        video = tiny_video()
        engine = WritebackEngine(video, mach_config(), BASELINE)
        result = engine.process_frame(noise_frame(video), slot_base=0)
        assert result.layout.mode is LayoutMode.RAW
        assert result.bytes_written == video.frame_bytes
        assert result.matches.none == video.blocks_per_frame
        assert result.dump is None
        # Sequential line writes covering the whole frame.
        assert len(result.write_lines) == video.frame_bytes // 64

    def test_dcc_compresses_flat_frame(self):
        video = tiny_video()
        engine = WritebackEngine(video, mach_config(), DCC_ONLY)
        result = engine.process_frame(flat_frame(video), slot_base=0)
        assert result.layout.mode is LayoutMode.RAW
        assert result.bytes_written < video.frame_bytes / 4


class TestMachWriteback:
    def test_flat_frame_collapses_under_gab(self):
        video = tiny_video()
        engine = WritebackEngine(video, mach_config(), GAB)
        result = engine.process_frame(flat_frame(video), slot_base=0)
        # One stored block; the rest intra matches.
        assert result.matches.none == 1
        assert result.matches.intra == video.blocks_per_frame - 1
        assert result.layout.data_bytes == video.block_bytes
        assert result.layout.savings > 0.5

    def test_multicolour_flat_matches_gab_not_mab(self):
        video = tiny_video()
        blocks = np.zeros((video.blocks_per_frame, video.block_bytes),
                          dtype=np.uint8)
        # Every block a different flat colour.
        for i in range(video.blocks_per_frame):
            blocks[i] = np.tile(np.asarray([i, 2 * i, 3 * i], np.uint8),
                                video.block_bytes // 3)
        gab_engine = WritebackEngine(video, mach_config(), GAB)
        mab_engine = WritebackEngine(video, mach_config(), MAB)
        gab_result = gab_engine.process_frame(frame_of(blocks), 0)
        mab_result = mab_engine.process_frame(frame_of(blocks), 0)
        assert gab_result.matches.intra == video.blocks_per_frame - 1
        assert mab_result.matches.intra == 0  # all distinct as mabs

    def test_inter_match_across_frames(self):
        video = tiny_video()
        # MACH large enough to retain every stored block of a frame.
        engine = WritebackEngine(video, mach_config(entries_per_mach=64), GAB)
        frame_a = noise_frame(video, seed=1, index=0)
        engine.process_frame(frame_a, slot_base=0)
        frame_b = frame_of(frame_a.blocks.copy(), index=1)
        result = engine.process_frame(frame_b, slot_base=1 << 16)
        # Nearly every block inter-matches (a set-conflict eviction in
        # the finite MACH can lose the odd digest).
        assert result.matches.inter >= video.blocks_per_frame - 2
        assert result.matches.intra == 0
        assert result.layout.count(RecordKind.DIGEST) == result.matches.inter

    def test_digest_records_keep_donor_pointer(self):
        video = tiny_video()
        engine = WritebackEngine(video, mach_config(), GAB)
        frame_a = noise_frame(video, seed=1, index=0)
        first = engine.process_frame(frame_a, slot_base=0)
        result = engine.process_frame(frame_of(frame_a.blocks.copy(), 1),
                                      slot_base=1 << 16)
        digest_mask = result.layout.mask(RecordKind.DIGEST)
        # Donor addresses point into frame 0's slot (below 1<<16).
        assert (result.layout.pointers[digest_mask] < (1 << 16)).all()
        assert (result.layout.pointers[digest_mask]
                >= first.layout.data_base).all()

    def test_pointer_layout_mode_for_non_display_scheme(self):
        from repro.config import SchemeConfig
        video = tiny_video()
        scheme = SchemeConfig(name="mach-only", batch_size=16, racing=True,
                              content_cache="gab", display_caching=False)
        engine = WritebackEngine(video, mach_config(entries_per_mach=64),
                                 scheme)
        frame_a = noise_frame(video, seed=1)
        engine.process_frame(frame_a, slot_base=0)
        result = engine.process_frame(frame_of(frame_a.blocks.copy(), 1),
                                      slot_base=1 << 16)
        assert result.layout.mode is LayoutMode.POINTER
        assert result.layout.count(RecordKind.DIGEST) == 0
        assert result.layout.count(
            RecordKind.POINTER) >= video.blocks_per_frame - 2

    def test_unbounded_oracle_beats_lru(self):
        video = VideoConfig(width=96, height=48)
        config = mach_config(entries_per_mach=8, ways=4, num_machs=2)
        rng = np.random.default_rng(3)
        # Content: 40 recurring blocks repeated; capacity 8/frame forces
        # the LRU MACH to lose most of them, the oracle keeps all.
        pool = rng.integers(0, 256, (40, video.block_bytes), dtype=np.uint8)
        lru = WritebackEngine(video, config, GAB)
        oracle = WritebackEngine(video, config, GAB, unbounded_mach=True)
        for index in range(4):
            picks = rng.integers(0, 40, video.blocks_per_frame)
            frame = frame_of(pool[picks].copy(), index)
            lru_result = lru.process_frame(frame, index << 16)
            oracle_result = oracle.process_frame(
                frame_of(pool[picks].copy(), index), index << 16)
        assert oracle_result.matches.match_rate > lru_result.matches.match_rate

    def test_frame_footprint_matches_layout(self):
        video = tiny_video()
        engine = WritebackEngine(video, mach_config(), GAB)
        result = engine.process_frame(noise_frame(video), 0)
        assert result.bytes_written == result.layout.total_bytes

    def test_uncoalesced_issues_more_writes(self):
        video = tiny_video()
        coalesced = WritebackEngine(video, mach_config(coalescing=True), GAB)
        scattered = WritebackEngine(video, mach_config(coalescing=False), GAB)
        frame = noise_frame(video)
        a = coalesced.process_frame(frame, 0)
        b = scattered.process_frame(
            frame_of(frame.blocks.copy()), 0)
        assert len(b.write_lines) > len(a.write_lines)


class TestSlotSizing:
    def test_raw_slot_is_frame_bytes(self):
        video = tiny_video()
        assert slot_bytes_needed(video, mach_config(), BASELINE) == (
            video.frame_bytes)

    def test_mach_slot_has_metadata_headroom(self):
        video = tiny_video()
        raw = slot_bytes_needed(video, mach_config(), BASELINE)
        gab = slot_bytes_needed(video, mach_config(), GAB)
        assert gab > raw

    def test_writeback_never_overflows_slot(self):
        video = tiny_video()
        config = mach_config()
        engine = WritebackEngine(video, config, GAB)
        slot = slot_bytes_needed(video, config, GAB)
        for index in range(6):
            result = engine.process_frame(noise_frame(video, seed=index,
                                                      index=index),
                                          slot_base=index * slot)
            assert result.bytes_written <= slot
