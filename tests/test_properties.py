"""Property-based invariants over the end-to-end pipeline.

Hypothesis draws scheme shapes and content profiles; every generated
run must satisfy the structural invariants the energy accounting and
scheduling depend on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate
from repro.config import SchemeConfig, SimulationConfig, VideoConfig
from repro.video import VideoProfile

_TINY = SimulationConfig(video=VideoConfig(width=64, height=32))

_scheme_strategy = st.builds(
    SchemeConfig,
    name=st.just("prop"),
    batch_size=st.sampled_from([1, 3, 8]),
    racing=st.booleans(),
    content_cache=st.sampled_from([None, "mab", "gab"]),
).map(lambda s: SchemeConfig(
    name=s.name, batch_size=s.batch_size, racing=s.racing,
    content_cache=s.content_cache,
    display_caching=s.content_cache is not None))

_profile_strategy = st.builds(
    VideoProfile,
    key=st.just("P"),
    name=st.just("prop"),
    description=st.just("generated"),
    n_frames=st.just(16),
    f_common=st.floats(0.1, 0.6),
    f_unique=st.floats(0.0, 0.2),
    f_flat=st.floats(0.0, 0.6),
    p_offset=st.floats(0.0, 0.9),
    p_update=st.floats(0.0, 0.3),
    complexity_mean=st.floats(0.85, 1.1),
)


class TestPipelineInvariants:
    @given(scheme=_scheme_strategy, profile=_profile_strategy,
           seed=st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_accounting_invariants(self, scheme, profile, seed):
        result = simulate(profile, scheme, n_frames=16, seed=seed,
                          config=_TINY)
        # Energy components are non-negative and sum to the total.
        parts = result.energy.as_dict()
        assert all(value >= 0 for value in parts.values())
        assert sum(parts.values()) == pytest.approx(result.energy.total)
        # Residencies form a distribution.
        assert sum(result.residency.values()) == pytest.approx(1.0,
                                                               abs=1e-6)
        # Every frame decoded exactly once, after a positive duration.
        assert (result.timeline.decode_time > 0).all()
        assert (np.diff(result.timeline.finish) > 0).all()
        # Write accounting: MACH never writes more than raw plus its
        # bounded metadata (pointer+base+bitmap+dump per block).
        assert result.write_bytes <= result.raw_write_bytes * 1.2
        # Drops are consistent between the display and the timeline.
        assert result.drops == int(result.timeline.dropped.sum())
        # Savings are bounded.
        assert result.write_savings <= 1.0
        if result.read_stats is not None:
            assert result.read_stats.savings <= 1.0

    @given(profile=_profile_strategy)
    @settings(max_examples=6, deadline=None)
    def test_batching_never_drops_more_than_baseline(self, profile):
        base = simulate(profile, SchemeConfig(name="b1"), n_frames=16,
                        seed=1, config=_TINY)
        batched = simulate(profile, SchemeConfig(name="b8", batch_size=8),
                           n_frames=16, seed=1, config=_TINY)
        assert batched.drops <= base.drops


class TestThermalInvariants:
    """The thermal model's determinism and monotonicity contracts."""

    @given(thermal_seed=st.integers(0, 40), duty=st.floats(0.1, 1.0),
           rate=st.floats(0.1, 1.0), profile=_profile_strategy)
    @settings(max_examples=8, deadline=None)
    def test_governor_is_deterministic(self, thermal_seed, duty, rate,
                                       profile):
        import json
        from dataclasses import replace

        from repro.config import ThermalConfig

        scheme = SchemeConfig(name="rts16", batch_size=16, racing=True)
        cfg = replace(_TINY, thermal=ThermalConfig(
            enabled=True, seed=thermal_seed, event_interval=0.25,
            cap_drop_rate=rate, cap_drop_duty=duty,
            delayed_transition_rate=rate))
        first = simulate(profile, scheme, n_frames=16, seed=1, config=cfg)
        second = simulate(profile, scheme, n_frames=16, seed=1, config=cfg)
        assert json.dumps(first.to_jsonable()) == json.dumps(
            second.to_jsonable())

    def test_degradation_monotone_in_cap_duty(self):
        # A stricter cap (longer revocation windows, nested by
        # construction) must never produce *fewer* ladder steps.
        from dataclasses import replace

        from repro.config import RACE_TO_SLEEP, ThermalConfig
        from repro.video import workload

        base = SimulationConfig()
        steps, throttles = [], []
        for duty in (0.0, 0.25, 0.55, 0.85, 1.0):
            cfg = replace(
                base,
                network=replace(base.network, preroll_frames=30),
                thermal=ThermalConfig(
                    enabled=True, seed=7, event_interval=1.0,
                    cap_drop_rate=1.0, cap_drop_duty=duty,
                    delayed_transition_rate=0.5))
            run = simulate(workload("V5"), RACE_TO_SLEEP, n_frames=48,
                           seed=7, config=cfg)
            steps.append(run.degradation_steps)
            throttles.append(run.throttle_seconds)
        assert steps == sorted(steps)
        assert throttles == sorted(throttles)
        assert steps[0] == 0 and steps[-1] > 0


class TestInjectionOrderFreedom:
    """FaultPlan packet draws are pure hashes of their coordinates:
    query order, interleaving with link operations, and the emergent
    drop schedule can never reshuffle them (and vice versa)."""

    @given(seed=st.integers(0, 2**32 - 1), rate=st.floats(0.05, 0.6),
           perm_seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_packet_draws_order_independent(self, seed, rate, perm_seed):
        from repro.config import FaultConfig
        from repro.faults import FaultPlan

        plan = FaultPlan(FaultConfig(packet_loss=rate, seed=seed))
        coords = [(f, p, a) for f in range(6) for p in range(5)
                  for a in range(2)]
        forward = {c: plan.packet_lost(*c) for c in coords}
        rng = np.random.default_rng(perm_seed)
        shuffled = [coords[i] for i in rng.permutation(len(coords))]
        # A fresh plan queried in a different order, with redundant
        # repeat queries interleaved, must agree coordinate-for-
        # coordinate.
        replay = FaultPlan(FaultConfig(packet_loss=rate, seed=seed))
        for c in shuffled:
            assert replay.packet_lost(*c) == forward[c]
            assert replay.packet_lost(*c) == forward[c]  # re-query

    @given(seed=st.integers(0, 2**32 - 1), rate=st.floats(0.05, 0.6))
    @settings(max_examples=20, deadline=None)
    def test_injection_composes_with_emergent_loss(self, seed, rate):
        """Open loop: for a fixed send pattern, injected erasures
        occupy the queue, so they cannot change which packets the
        bottleneck itself drops."""
        from repro.config import FaultConfig, RealtimeConfig
        from repro.faults import FaultPlan
        from repro.realtime import BottleneckLink
        from repro.units import MBPS

        rt = RealtimeConfig(enabled=True, link_rate=1 * MBPS,
                            queue_bytes=12_000, seed=3)
        plan = FaultPlan(FaultConfig(packet_loss=rate, seed=seed))

        def run(inject):
            link = BottleneckLink(rt)
            schedule = []
            for f in range(30):
                flags = [inject and plan.packet_lost(f, j, 0)
                         for j in range(6)]
                out = link.send_burst(f * 0.01, f, [1200] * 6, 0, flags)
                schedule.append(tuple(out.queue_delay))
            return link, schedule

        clean_link, clean_delays = run(False)
        injected_link, injected_delays = run(True)
        assert injected_link.red_drops == clean_link.red_drops
        assert injected_link.overflow_drops == clean_link.overflow_drops
        assert injected_delays == clean_delays
