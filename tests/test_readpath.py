"""Tests for the display read path (fragmentation, display cache,
MACH buffer interplay)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BASELINE, GAB, DisplayConfig, MachConfig, VideoConfig
from repro.core.readpath import DisplayReadEngine
from repro.core.writeback import WritebackEngine
from repro.video.frame import DecodedFrame, FrameType


def tiny_video() -> VideoConfig:
    return VideoConfig(width=32, height=16)  # 32 blocks


def mach_config(**overrides) -> MachConfig:
    defaults = dict(num_machs=4, entries_per_mach=128, ways=4,
                    buffer_entries=512)
    defaults.update(overrides)
    return MachConfig(**defaults)


def make_engine(video, mach, **kwargs) -> DisplayReadEngine:
    return DisplayReadEngine(DisplayConfig(), mach, video, **kwargs)


def frame_of(blocks, index=0) -> DecodedFrame:
    return DecodedFrame(index=index, frame_type=FrameType.P, blocks=blocks,
                        complexity=1.0, encoded_bits=1000)


def noise_frame(video, seed=0, index=0) -> DecodedFrame:
    rng = np.random.default_rng(seed)
    return frame_of(rng.integers(0, 256,
                                 (video.blocks_per_frame, video.block_bytes),
                                 dtype=np.uint8), index)


WINDOW = (0.0, 0.014)


class TestRawScan:
    def test_reads_whole_frame_sequentially(self):
        video = tiny_video()
        writeback = WritebackEngine(video, mach_config(), BASELINE)
        reader = make_engine(video, mach_config())
        result = writeback.process_frame(noise_frame(video), 0)
        scan = reader.scan(result, WINDOW)
        assert scan.count == video.frame_bytes // 64
        assert (np.diff(scan.addresses) == 64).all()
        assert reader.stats.savings == pytest.approx(0.0)


class TestMachScan:
    def _pipeline(self, video, mach, frames, **reader_kwargs):
        writeback = WritebackEngine(video, mach, GAB)
        reader = make_engine(video, mach, **reader_kwargs)
        scans = []
        for index, frame in enumerate(frames):
            result = writeback.process_frame(frame, index << 16)
            scans.append(reader.scan(result, WINDOW))
        return reader, scans

    def test_no_match_frame_costs_more_than_raw(self):
        """Pure pointer indirection adds metadata + fragmentation."""
        video = tiny_video()
        reader, _ = self._pipeline(video, mach_config(),
                                   [noise_frame(video)])
        assert reader.stats.savings < 0

    def test_repeated_frames_save_reads(self):
        video = tiny_video()
        base = noise_frame(video, seed=5)
        frames = [frame_of(base.blocks.copy(), i) for i in range(4)]
        reader, scans = self._pipeline(video, mach_config(), frames)
        # Later frames are nearly all digest records served by the
        # MACH buffer: far fewer reads than the first scan.
        assert scans[-1].count < scans[0].count * 0.7
        assert reader.stats.mb_hits > 0

    def test_digest_fraction_reflects_inter_matches(self):
        video = tiny_video()
        base = noise_frame(video, seed=5)
        frames = [frame_of(base.blocks.copy(), i) for i in range(3)]
        reader, _ = self._pipeline(video, mach_config(), frames)
        assert reader.stats.digest_fraction > 0.4

    def test_fragmentation_counted(self):
        video = tiny_video()
        reader, _ = self._pipeline(video, mach_config(),
                                   [noise_frame(video)])
        # 48-byte blocks at 48-byte strides: the straddle fraction is
        # 50-75 % depending on the data region's alignment (the paper
        # reports "more than 45 %").
        assert 0.45 <= reader.stats.fragmentation_rate <= 1.0

    def test_display_cache_absorbs_straddle_partners(self):
        video = tiny_video()
        with_dc, _ = self._pipeline(video, mach_config(),
                                    [noise_frame(video)],
                                    use_display_cache=True)
        without_dc, _ = self._pipeline(video, mach_config(),
                                       [noise_frame(video)],
                                       use_display_cache=False)
        assert with_dc.stats.mem_reads < without_dc.stats.mem_reads
        assert with_dc.stats.dc_hits > 0
        assert without_dc.stats.dc_hits == 0

    def test_no_mach_buffer_pays_translation(self):
        video = tiny_video()
        base = noise_frame(video, seed=5)
        # Three identical frames: the lazy buffer fills during frame 1
        # and serves frame 2, which the no-buffer ablation cannot.
        frames = [frame_of(base.blocks.copy(), i) for i in range(3)]
        with_buffer, _ = self._pipeline(video, mach_config(), frames,
                                        use_mach_buffer=True)
        no_buffer, _ = self._pipeline(video, mach_config(), frames,
                                      use_mach_buffer=False)
        assert no_buffer.stats.mem_reads > with_buffer.stats.mem_reads
        assert no_buffer.stats.translation_reads > 0

    def test_eager_policy_prefetches(self):
        video = tiny_video()
        base = noise_frame(video, seed=5)
        frames = [frame_of(base.blocks.copy(), i) for i in range(2)]
        reader, _ = self._pipeline(video, mach_config(), frames,
                                   buffer_policy="eager")
        assert reader.stats.prefetch_reads > 0
        assert reader.buffer.policy == "eager"

    def test_small_buffer_misses(self):
        video = tiny_video()
        base = noise_frame(video, seed=5)
        frames = [frame_of(base.blocks.copy(), i) for i in range(3)]
        big, _ = self._pipeline(video, mach_config(buffer_entries=512),
                                frames)
        small, _ = self._pipeline(video, mach_config(buffer_entries=4),
                                  frames)
        assert small.stats.mb_misses > big.stats.mb_misses

    def test_stats_accumulate_across_frames(self):
        video = tiny_video()
        reader, _ = self._pipeline(
            video, mach_config(),
            [noise_frame(video, seed=s, index=s) for s in range(3)])
        assert reader.stats.frames == 3
        assert reader.stats.raw_equivalent_lines == 3 * (
            video.frame_bytes // 64)
