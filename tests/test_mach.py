"""Tests for the MACH content cache (ring, freezing, CO-MACH)."""

from __future__ import annotations

import pytest

from repro.config import MachConfig, VideoConfig
from repro.errors import SchedulingError
from repro.core.mach import (
    FrameMach,
    MachRing,
    MachStats,
    MatchKind,
    split_digest,
)


def small_mach(**overrides) -> MachConfig:
    defaults = dict(num_machs=3, entries_per_mach=8, ways=2)
    defaults.update(overrides)
    return MachConfig(**defaults)


class TestFrameMach:
    def test_insert_lookup(self):
        mach = FrameMach(small_mach(), frame_index=0)
        mach.insert(0x1234, address=1000, aux=7)
        assert mach.lookup(0x1234, aux=7) == 1000

    def test_miss(self):
        mach = FrameMach(small_mach(), frame_index=0)
        assert mach.lookup(0x1234, aux=0) is None

    def test_capacity_eviction(self):
        config = small_mach(entries_per_mach=4, ways=2)  # 2 sets x 2 ways
        mach = FrameMach(config, frame_index=0)
        # Fill one set (even digests map to set 0 via low bit).
        for digest in (0, 2, 4):
            mach.insert(digest, address=digest * 10, aux=0)
        assert mach.lookup(0, aux=0) is None  # LRU victim
        assert mach.lookup(4, aux=0) == 40

    def test_unbounded_oracle_never_evicts(self):
        mach = FrameMach(small_mach(entries_per_mach=4, ways=2),
                         frame_index=0, unbounded=True)
        for digest in range(1000):
            mach.insert(digest, address=digest, aux=0)
        assert mach.lookup(999, aux=0) == 999
        assert mach.lookup(0, aux=0) == 0

    def test_freeze_snapshot(self):
        mach = FrameMach(small_mach(), frame_index=5)
        mach.insert(10, 100, 0)
        mach.insert(11, 200, 0)
        frozen = mach.freeze()
        assert frozen.frame_index == 5
        assert frozen.entries == 2
        assert frozen.table[10] == (100, 0)
        assert set(frozen.digests.tolist()) == {10, 11}


class TestCoMach:
    def test_detected_collision_goes_to_co_mach(self):
        config = small_mach(co_mach=True, co_mach_entries=8)
        mach = FrameMach(config, frame_index=0)
        stats = MachStats()
        mach.insert(0x42, address=1, aux=100)
        # Same CRC32, different CRC16: a detected collision.
        assert mach.lookup(0x42, aux=999, stats=stats) is None
        assert stats.detected_collisions == 1
        # The colliding block gets stored; spilled into CO-MACH.
        mach.insert(0x42, address=2, aux=999)
        assert mach.lookup(0x42, aux=999, stats=stats) == 2
        assert stats.co_mach_hits == 1
        # The original entry is still intact.
        assert mach.lookup(0x42, aux=100, stats=stats) == 1

    def test_without_co_mach_collision_is_silent(self):
        mach = FrameMach(small_mach(co_mach=False), frame_index=0)
        stats = MachStats()
        mach.insert(0x42, address=1, aux=100)
        # Wrong aux still "hits" (the hardware cannot tell) but the
        # tracker records the silent collision.
        assert mach.lookup(0x42, aux=999, stats=stats) == 1
        assert stats.silent_collisions == 1


class TestMachRing:
    def test_intra_before_inter(self):
        ring = MachRing(small_mach())
        ring.begin_frame(0)
        ring.insert(7, address=100)
        ring.end_frame()
        ring.begin_frame(1)
        ring.insert(7, address=200)  # same digest stored again this frame
        kind, address = ring.lookup(7)
        assert kind is MatchKind.INTRA
        assert address == 200

    def test_inter_found_in_frozen(self):
        ring = MachRing(small_mach())
        ring.begin_frame(0)
        ring.insert(7, address=100)
        ring.end_frame()
        ring.begin_frame(1)
        kind, address = ring.lookup(7)
        assert kind is MatchKind.INTER
        assert address == 100

    def test_newest_frozen_wins(self):
        ring = MachRing(small_mach())
        for frame, address in ((0, 100), (1, 200)):
            ring.begin_frame(frame)
            ring.insert(7, address=address)
            ring.end_frame()
        ring.begin_frame(2)
        kind, address = ring.lookup(7)
        assert kind is MatchKind.INTER
        assert address == 200

    def test_ring_window_expires(self):
        config = small_mach(num_machs=2)  # current + 1 frozen
        ring = MachRing(config)
        ring.begin_frame(0)
        ring.insert(7, address=100)
        ring.end_frame()
        for frame in (1, 2):
            ring.begin_frame(frame)
            ring.end_frame()
        ring.begin_frame(3)
        kind, _ = ring.lookup(7)
        assert kind is MatchKind.NONE

    def test_stats_recording(self):
        ring = MachRing(small_mach())
        ring.begin_frame(0)
        ring.stats.record(MatchKind.NONE, 5)
        ring.stats.record(MatchKind.INTRA, 5)
        ring.stats.record(MatchKind.INTER, 5)
        assert ring.stats.total == 3
        assert ring.stats.match_rate == pytest.approx(2 / 3)

    def test_begin_twice_raises(self):
        ring = MachRing(small_mach())
        ring.begin_frame(0)
        with pytest.raises(SchedulingError):
            ring.begin_frame(1)

    def test_lookup_without_frame_raises(self):
        ring = MachRing(small_mach())
        with pytest.raises(SchedulingError):
            ring.lookup(1)


class TestMachStats:
    def test_top_match_share(self):
        stats = MachStats()
        for _ in range(8):
            stats.record(MatchKind.INTRA, 1)
        for _ in range(2):
            stats.record(MatchKind.INTER, 2)
        assert stats.top_match_share(1) == pytest.approx(0.8)
        assert stats.top_match_share(2) == pytest.approx(1.0)

    def test_empty_share(self):
        assert MachStats().top_match_share() == 0.0


class TestSplitDigest:
    def test_split(self):
        tag, aux = split_digest((0xBEEF << 32) | 0xDEADC0DE)
        assert tag == 0xDEADC0DE
        assert aux == 0xBEEF


class TestScaledConfig:
    def test_scaling_preserves_structure(self):
        config = MachConfig()
        video = VideoConfig(width=192, height=108)
        scaled = config.scaled_for(video)
        assert scaled.num_machs == config.num_machs
        assert scaled.entries_per_mach % scaled.ways == 0
        assert scaled.entries_per_mach < config.entries_per_mach
        assert scaled.buffer_entries >= (scaled.num_machs
                                         * scaled.entries_per_mach)

    def test_native_resolution_not_scaled(self):
        config = MachConfig()
        video = VideoConfig(width=3840, height=2160)
        assert config.scaled_for(video) is config
