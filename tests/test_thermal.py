"""Tests for the thermal-pressure model and the degradation ladder."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.config import RACE_TO_SLEEP, SimulationConfig, ThermalConfig
from repro.core.pipeline import simulate
from repro.core.race_to_sleep import (
    AdaptivePlan,
    AdaptiveRtSGovernor,
    LADDER_STEPS,
)
from repro.core.results import RunResult
from repro.core.session import Play, simulate_session
from repro.errors import ThermalError
from repro.thermal import ThermalModel, ThermalPlan
from repro.video import workload

_CFG = SimulationConfig()


def _injecting(**kwargs) -> ThermalConfig:
    return ThermalConfig(enabled=True, **kwargs)


def _pressed_config(duty: float, adaptive: bool,
                    seed: int = 7) -> SimulationConfig:
    return replace(
        _CFG,
        network=replace(_CFG.network, preroll_frames=30),
        thermal=ThermalConfig(
            enabled=True, adaptive=adaptive, seed=seed,
            event_interval=1.0, cap_drop_rate=1.0, cap_drop_duty=duty,
            delayed_transition_rate=0.5))


class TestThermalPlan:
    def test_no_injection_means_no_plan(self):
        assert ThermalPlan.from_config(_injecting()) is None
        assert ThermalPlan.from_config(
            _injecting(cap_drop_rate=0.5)) is not None
        assert ThermalPlan.from_config(
            _injecting(stuck_dvfs_rate=0.1)) is not None
        assert ThermalPlan.from_config(
            _injecting(delayed_transition_rate=0.1)) is not None

    def test_queries_are_order_free(self):
        plan = ThermalPlan(_injecting(cap_drop_rate=0.6, cap_drop_duty=0.4,
                                      delayed_transition_rate=0.3,
                                      seed=11))
        times = np.linspace(0.0, 30.0, 400)
        forward = [(plan.boost_revoked(t), plan.wake_delay(t))
                   for t in times]
        backward = [(plan.boost_revoked(t), plan.wake_delay(t))
                    for t in reversed(times)]
        assert forward == backward[::-1]

    def test_windows_nest_in_duty_and_rate(self):
        # A stricter config's revoked set must contain a milder one's
        # (same seed): the window is [slot*I, slot*I + duty*I) and the
        # accept threshold is the rate, so both knobs nest.
        mild = ThermalPlan(_injecting(cap_drop_rate=0.3, cap_drop_duty=0.2,
                                      seed=5))
        stricter_duty = ThermalPlan(
            _injecting(cap_drop_rate=0.3, cap_drop_duty=0.8, seed=5))
        stricter_rate = ThermalPlan(
            _injecting(cap_drop_rate=0.9, cap_drop_duty=0.2, seed=5))
        for t in np.linspace(0.0, 60.0, 1500):
            if mild.boost_revoked(t):
                assert stricter_duty.boost_revoked(t)
                assert stricter_rate.boost_revoked(t)

    def test_revoked_overlap_matches_pointwise_integration(self):
        plan = ThermalPlan(_injecting(cap_drop_rate=0.7, cap_drop_duty=0.45,
                                      stuck_dvfs_rate=0.2, seed=3))
        start, end, n = 0.3, 17.7, 200_000
        grid = np.linspace(start, end, n, endpoint=False)
        dt = (end - start) / n
        riemann = sum(plan.boost_revoked(t) for t in grid) * dt
        assert plan.revoked_overlap(start, end) == pytest.approx(
            riemann, abs=5 * dt)

    def test_boost_revoked_constant_between_boundaries(self):
        plan = ThermalPlan(_injecting(cap_drop_rate=0.6, cap_drop_duty=0.5,
                                      seed=9))
        t = 0.0
        for _ in range(40):
            boundary = plan.next_boundary(t)
            assert boundary > t
            samples = np.linspace(t, boundary, 25, endpoint=False)[1:]
            states = {plan.boost_revoked(s) for s in samples}
            assert len(states) == 1
            t = boundary

    def test_wake_delay_is_all_or_nothing(self):
        cfg = _injecting(delayed_transition_rate=0.5)
        plan = ThermalPlan(cfg)
        delays = {plan.wake_delay(t) for t in np.linspace(0, 50, 500)}
        assert delays == {0.0, cfg.transition_delay}


class TestThermalModel:
    def test_requires_enabled_config(self):
        with pytest.raises(ThermalError, match="enabled"):
            ThermalModel(ThermalConfig())

    def test_rc_matches_closed_form(self):
        cfg = _injecting()
        model = ThermalModel(cfg)
        power, horizon = 0.8, 5.0
        for t in np.linspace(0.1, horizon, 37):
            model.advance_to(t, power)
        tau = cfg.thermal_resistance * cfg.thermal_capacitance
        target = cfg.ambient_c + power * cfg.thermal_resistance
        expected = target + (cfg.ambient_c - target) * np.exp(
            -horizon / tau)
        assert model.temp_c == pytest.approx(expected, rel=1e-9)

    def test_hysteresis_revokes_then_releases(self):
        # Tight thresholds and a hot power level so the junction
        # crosses quickly; cooling at idle must restore boost only
        # after the release temperature.
        cfg = _injecting(thermal_resistance=50.0, thermal_capacitance=0.2,
                         throttle_temp_c=50.0, release_temp_c=40.0)
        model = ThermalModel(cfg)
        t = 0.0
        while model.boost_available(t) and t < 60.0:
            t += 0.05
            model.advance_to(t, 1.0)  # 1 W -> target 80 C
        assert not model.boost_available(t)
        assert model.temp_c >= cfg.throttle_temp_c
        release = t
        while not model.boost_available(release) and release < t + 60.0:
            release += 0.05
            model.advance_to(release, 0.0)  # idle -> target 30 C
        assert model.boost_available(release)
        assert model.temp_c <= cfg.release_temp_c

    def test_sustained_power_cap_hysteresis(self):
        cfg = _injecting(sustained_power_cap=0.5, cap_window=0.5)
        model = ThermalModel(cfg)
        model.advance_to(5.0, 1.0)  # EMA -> 1 W, far above the cap
        assert not model.boost_available(5.0)
        model.advance_to(5.1, 0.0)  # brief dip: still above release
        assert not model.boost_available(5.1)
        model.advance_to(15.0, 0.0)  # EMA decays toward zero
        assert model.boost_available(15.0)

    def test_throttle_seconds_integrates_injected_windows(self):
        cfg = _injecting(cap_drop_rate=0.8, cap_drop_duty=0.4, seed=2)
        model = ThermalModel(cfg)
        horizon = 13.0
        for t in np.linspace(0.31, horizon, 57):
            model.advance_to(t, 0.1)
        assert model.throttle_seconds == pytest.approx(
            ThermalPlan(cfg).revoked_overlap(0.0, horizon), rel=1e-9)

    def test_backwards_time_raises(self):
        model = ThermalModel(_injecting())
        model.advance_to(1.0, 0.5)
        with pytest.raises(ThermalError, match="backwards"):
            model.advance_to(0.5, 0.5)

    def test_snapshot_reflects_state(self):
        model = ThermalModel(_injecting())
        model.advance_to(2.0, 0.6)
        snap = model.snapshot()
        assert snap.time == 2.0
        assert snap.temp_c == model.temp_c
        assert snap.ema_power == model.ema_power
        assert snap.throttle_seconds == model.throttle_seconds


class _InstantSource:
    """FrameSource stub: everything buffered at t=0."""

    def frames_available(self, time: float) -> int:
        return 10 ** 9

    def time_when_available(self, count: int) -> float:
        return 0.0


def _governor(thermal_cfg: ThermalConfig) -> AdaptiveRtSGovernor:
    return AdaptiveRtSGovernor(
        RACE_TO_SLEEP, _CFG.decoder, _InstantSource(),
        _CFG.video.frame_interval, 1, ThermalModel(thermal_cfg))


class TestDegradationLadder:
    def test_boost_granted_reproduces_fixed_plan(self):
        gov = _governor(_injecting())
        plan = gov.plan_wake_adaptive(0.0, 0, lambda batch: 0.0)
        assert isinstance(plan, AdaptivePlan)
        assert plan.step == 0 and plan.racing and plan.allow_s3
        assert plan.batch_cap == RACE_TO_SLEEP.batch_size
        assert gov.degradation_steps == 0

    def test_revoked_boost_replans_at_nominal(self):
        gov = _governor(_injecting(stuck_dvfs_rate=1.0,
                                   event_interval=1000.0))
        plan = gov.plan_wake_adaptive(0.0, 16, lambda batch: 0.0)
        assert plan.step == 1 and not plan.racing and plan.allow_s3
        assert plan.reason == LADDER_STEPS[1]
        assert gov.degradation_steps == 1
        # The nominal-frequency safe start must be earlier than the
        # boosted one the fixed governor would have used.
        assert (gov.latest_safe_start(16, racing=False)
                < gov.latest_safe_start(16, racing=True))

    def test_unformable_batch_shrinks_toward_one(self):
        gov = _governor(_injecting(stuck_dvfs_rate=1.0,
                                   event_interval=1000.0))
        never_free = lambda batch: 0.0 if batch == 1 else 10.0  # noqa: E731
        plan = gov.plan_wake_adaptive(0.0, 16, never_free)
        assert plan.step == 2
        assert plan.batch_cap == 1
        assert gov.batch_cap == 1

    def test_ladder_walks_every_step_as_time_runs_out(self):
        # Frame 3's deadline is meetable at nominal from t=0 but not
        # from arbitrarily late starts, so sweeping `now` crosses the
        # whole ladder; frame 0 would concede immediately (its nominal
        # decode estimate exceeds one display lead).
        gov = _governor(_injecting(stuck_dvfs_rate=1.0,
                                   event_interval=1000.0))
        deadline = gov.deadline(3)
        seen = {}
        for now in np.arange(0.0, deadline + 0.005, 0.0001):
            probe = _governor(_injecting(stuck_dvfs_rate=1.0,
                                         event_interval=1000.0))
            plan = probe.plan_wake_adaptive(float(now), 3,
                                            lambda batch: 0.0)
            seen.setdefault(plan.step, plan)
        assert {1, 3, 4} <= set(seen)
        assert not seen[3].allow_s3 and not seen[4].allow_s3
        concede = seen[4]
        assert concede.reason == LADDER_STEPS[4]

    def test_batch_depth_recovers_when_boost_returns(self):
        gov = _governor(_injecting(stuck_dvfs_rate=1.0,
                                   event_interval=1000.0))
        never_free = lambda batch: 0.0 if batch == 1 else 10.0  # noqa: E731
        gov.plan_wake_adaptive(0.0, 16, never_free)
        assert gov.batch_cap == 1
        gov.thermal.plan = None  # pressure lifts
        gov.plan_wake_adaptive(0.0, 16, lambda batch: 0.0)
        assert gov.batch_cap == 2  # AIMD: +1 per calm plan
        assert gov.max_step == 2


class TestPipelineUnderPressure:
    def test_quiet_thermal_is_bit_identical_to_disabled(self):
        quiet = replace(_CFG, thermal=ThermalConfig(enabled=True))
        on = simulate(workload("V8"), RACE_TO_SLEEP, n_frames=48,
                      seed=3, config=quiet)
        off = simulate(workload("V8"), RACE_TO_SLEEP, n_frames=48,
                       seed=3, config=_CFG)
        assert json.dumps(on.to_jsonable()) == json.dumps(
            off.to_jsonable())

    def test_adaptive_drops_below_fixed_under_throttle(self):
        adaptive = simulate(workload("V5"), RACE_TO_SLEEP, n_frames=96,
                            seed=7, config=_pressed_config(0.55, True))
        fixed = simulate(workload("V5"), RACE_TO_SLEEP, n_frames=96,
                         seed=7, config=_pressed_config(0.55, False))
        assert adaptive.throttle_seconds / adaptive.elapsed >= 0.5
        assert fixed.drops > 0
        assert adaptive.drops == 0
        assert adaptive.degradation_steps > 0
        assert adaptive.frames_at_nominal > 0
        assert (abs(adaptive.energy.total - fixed.energy.total)
                / fixed.energy.total < 0.05)

    def test_fixed_governor_reports_pressure_without_adapting(self):
        fixed = simulate(workload("V5"), RACE_TO_SLEEP, n_frames=96,
                         seed=7, config=_pressed_config(0.55, False))
        assert fixed.throttle_seconds > 0
        assert fixed.frames_at_nominal > 0
        assert fixed.degradation_steps == 0  # no ladder to walk

    def test_new_fields_round_trip_bit_identically(self):
        run = simulate(workload("V5"), RACE_TO_SLEEP, n_frames=96,
                       seed=7, config=_pressed_config(0.55, True))
        assert run.throttle_seconds > 0
        restored = RunResult.from_jsonable(
            json.loads(json.dumps(run.to_jsonable())))
        assert restored.throttle_seconds == run.throttle_seconds
        assert restored.degradation_steps == run.degradation_steps
        assert restored.frames_at_nominal == run.frames_at_nominal
        assert restored.energy.total == run.energy.total

    def test_legacy_checkpoint_defaults_new_fields_to_zero(self):
        run = simulate(workload("V8"), RACE_TO_SLEEP, n_frames=16,
                       seed=2)
        payload = run.to_jsonable()
        for name in ("throttle_seconds", "degradation_steps",
                     "frames_at_nominal"):
            del payload[name]
        restored = RunResult.from_jsonable(payload)
        assert restored.throttle_seconds == 0.0
        assert restored.degradation_steps == 0
        assert restored.frames_at_nominal == 0

    def test_session_aggregates_thermal_counters(self):
        pressed = _pressed_config(0.55, True)
        session = simulate_session(
            [Play(workload("V5"), n_frames=48),
             Play(workload("V5"), n_frames=48)],
            RACE_TO_SLEEP, config=pressed, seed=7)
        assert session.throttle_seconds == pytest.approx(sum(
            run.throttle_seconds for run in session.segments))
        assert session.degradation_steps == sum(
            run.degradation_steps for run in session.segments)
        assert session.frames_at_nominal == sum(
            run.frames_at_nominal for run in session.segments)
        assert session.throttle_seconds > 0
