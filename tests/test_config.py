"""Tests for configuration dataclasses and scheme definitions."""

from __future__ import annotations

import pytest

from repro.config import (
    BASELINE,
    FIG11_SCHEMES,
    GAB,
    GAB_DCC,
    MAB,
    DecoderConfig,
    DramConfig,
    MachConfig,
    SchemeConfig,
    SimulationConfig,
    VideoConfig,
)
from repro.errors import ConfigError


class TestSchemeDefinitions:
    def test_fig11_order(self):
        names = [s.name for s in FIG11_SCHEMES]
        assert names == ["Baseline", "Batching", "Racing", "Race-to-Sleep",
                         "MAB", "GAB"]

    def test_baseline_is_plain(self):
        assert BASELINE.batch_size == 1
        assert not BASELINE.racing
        assert not BASELINE.uses_mach

    def test_mab_gab_differ_only_in_tagging(self):
        assert MAB.content_cache == "mab"
        assert GAB.content_cache == "gab"
        assert MAB.batch_size == GAB.batch_size == 16
        assert MAB.racing and GAB.racing
        assert MAB.display_caching and GAB.display_caching

    def test_gab_dcc_stacks(self):
        assert GAB_DCC.dcc and GAB_DCC.content_cache == "gab"

    def test_display_caching_requires_mach(self):
        with pytest.raises(ConfigError):
            SchemeConfig(name="bad", display_caching=True)

    def test_unknown_cache_mode(self):
        with pytest.raises(ConfigError):
            SchemeConfig(name="bad", content_cache="huffman")


class TestVideoConfig:
    def test_block_bytes(self):
        assert VideoConfig().block_bytes == 48  # 4x4 RGB, the paper's mab

    def test_invalid_block_division(self):
        with pytest.raises(ConfigError):
            VideoConfig(width=100, height=50, block_size=3)


class TestDecoderConfig:
    def test_paper_power_points(self):
        config = DecoderConfig()
        assert config.active_power(racing=False) == pytest.approx(0.30)
        assert config.active_power(racing=True) == pytest.approx(0.69)
        assert config.frequency(racing=True) == 2 * config.frequency(
            racing=False)

    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            DecoderConfig(low_freq=400e6, high_freq=300e6)


class TestDramConfig:
    def test_paper_organization(self):
        config = DramConfig()
        assert config.total_banks == 16
        assert config.lines_per_row == 32

    def test_power_of_two_validation(self):
        with pytest.raises(ConfigError):
            DramConfig(row_bytes=1000)


class TestMachConfig:
    def test_paper_structure(self):
        config = MachConfig()
        assert config.total_entries == 2048
        assert config.sets_per_mach == 64

    def test_ways_divide_entries(self):
        with pytest.raises(ConfigError):
            MachConfig(entries_per_mach=10, ways=4)

    def test_scheme_mach_selection(self):
        sim = SimulationConfig()
        assert sim.with_scheme_mach(GAB).use_gradient
        assert not sim.with_scheme_mach(MAB).use_gradient
        assert sim.with_scheme_mach(BASELINE) is sim.mach


class TestScaling:
    def test_scaled_entries_round_to_pow2_sets(self):
        config = MachConfig()
        scaled = config.scaled_for(VideoConfig(width=192, height=108))
        sets = scaled.entries_per_mach // scaled.ways
        assert sets & (sets - 1) == 0

    def test_display_cache_scaling_floors(self):
        from repro.config import DisplayConfig
        display = DisplayConfig()
        scaled = display.scaled_cache_bytes(VideoConfig(width=192,
                                                        height=108))
        assert scaled >= 4 * 64
        assert scaled < display.display_cache_bytes
