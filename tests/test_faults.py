"""Tests for fault injection and the resilience machinery.

The two load-bearing properties from the issue:

* same seed -> bit-identical fault schedule and results;
* ``fault_rate=0`` -> exactly today's (fault-free) results.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import (
    GAB,
    RACE_TO_SLEEP,
    FaultConfig,
    NetworkConfig,
    SimulationConfig,
    VideoConfig,
)
from repro.core.pipeline import simulate
from repro.errors import ConfigError, FaultError
from repro.faults import FaultPlan, SegmentFault, conceal_blocks
from repro.network import deliver_for_config
from repro.units import MBPS
from repro.video import workload
from repro.video.codec import Decoder, Encoder
from repro.errors import CodecError


def _network(**kwargs) -> NetworkConfig:
    base = dict(mode="trace", trace_kind="constant",
                mean_bandwidth=24 * MBPS, abr="fixed", abr_fixed_rung=2,
                download_mode="burst", trace_seed=3)
    base.update(kwargs)
    return NetworkConfig(**base)


class TestFaultConfig:
    def test_defaults_inert(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        assert FaultPlan.from_config(cfg) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultConfig(segment_loss=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(segment_loss=0.6, segment_corruption=0.6)
        with pytest.raises(ConfigError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            FaultConfig(segment_timeout=0.0)

    def test_enabled_flags(self):
        assert FaultConfig(segment_loss=0.1).enabled
        assert FaultConfig(block_bit_error=1e-6).enabled
        assert FaultConfig(digest_collision=1e-4).enabled
        assert not FaultConfig(max_retries=5).enabled


class TestFaultPlanDeterminism:
    def test_same_seed_identical_schedule(self):
        a = FaultPlan(FaultConfig(segment_loss=0.2, segment_corruption=0.1,
                                  segment_timeout_rate=0.05,
                                  block_bit_error=1e-5,
                                  digest_collision=1e-3, seed=42))
        b = FaultPlan(FaultConfig(segment_loss=0.2, segment_corruption=0.1,
                                  segment_timeout_rate=0.05,
                                  block_bit_error=1e-5,
                                  digest_collision=1e-3, seed=42))
        for seg in range(50):
            for attempt in range(4):
                assert (a.segment_fault(seg, attempt)
                        == b.segment_fault(seg, attempt))
                assert (a.loss_fraction(seg, attempt)
                        == b.loss_fraction(seg, attempt))
        for frame in range(20):
            assert (a.corrupt_block_indices(frame, 256, 48)
                    == b.corrupt_block_indices(frame, 256, 48)).all()
            for block in range(64):
                assert (a.digest_collision(frame, block)
                        == b.digest_collision(frame, block))

    def test_different_seeds_differ(self):
        a = FaultPlan(FaultConfig(segment_loss=0.3, seed=1))
        b = FaultPlan(FaultConfig(segment_loss=0.3, seed=2))
        decisions_a = [a.segment_fault(i, 0) for i in range(200)]
        decisions_b = [b.segment_fault(i, 0) for i in range(200)]
        assert decisions_a != decisions_b

    def test_rates_respected(self):
        plan = FaultPlan(FaultConfig(segment_loss=0.3, seed=9))
        hits = sum(plan.segment_fault(i, 0) is SegmentFault.LOSS
                   for i in range(4000))
        assert 0.25 < hits / 4000 < 0.35

    def test_loss_fraction_interior(self):
        plan = FaultPlan(FaultConfig(segment_loss=0.5, seed=0))
        fractions = [plan.loss_fraction(i, 0) for i in range(100)]
        assert all(0.0 < f < 1.0 for f in fractions)

    def test_block_corruption_scales_with_ber(self):
        low = FaultPlan(FaultConfig(block_bit_error=1e-7, seed=4))
        high = FaultPlan(FaultConfig(block_bit_error=1e-5, seed=4))
        n_low = sum(len(low.corrupt_block_indices(f, 512, 48))
                    for f in range(30))
        n_high = sum(len(high.corrupt_block_indices(f, 512, 48))
                     for f in range(30))
        assert n_high > n_low


class TestConcealBlocks:
    def test_copies_from_previous(self):
        blocks = np.zeros((8, 16), dtype=np.uint8)
        previous = np.full((8, 16), 77, dtype=np.uint8)
        corrupt = np.array([2, 5])
        assert conceal_blocks(blocks, corrupt, previous) == 2
        assert (blocks[2] == 77).all() and (blocks[5] == 77).all()
        assert (blocks[0] == 0).all()

    def test_gray_without_previous(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        conceal_blocks(blocks, np.array([1]), None)
        assert (blocks[1] == 128).all()

    def test_out_of_range_raises(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        with pytest.raises(FaultError):
            conceal_blocks(blocks, np.array([7]), None)

    def test_empty_is_noop(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        assert conceal_blocks(blocks, np.empty(0, dtype=np.int64),
                              None) == 0

    def test_every_block_corrupt(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        previous = np.full((4, 16), 9, dtype=np.uint8)
        assert conceal_blocks(blocks, np.arange(4), previous) == 4
        assert (blocks == 9).all()
        # Same frame without a reference: the whole frame goes gray.
        blocks = np.zeros((4, 16), dtype=np.uint8)
        assert conceal_blocks(blocks, np.arange(4), None) == 4
        assert (blocks == 128).all()

    def test_zero_block_frame(self):
        blocks = np.zeros((0, 16), dtype=np.uint8)
        assert conceal_blocks(blocks, np.empty(0, dtype=np.int64),
                              None) == 0
        # Any claimed corruption in an empty frame is out of range.
        with pytest.raises(FaultError):
            conceal_blocks(blocks, np.array([0]), None)

    def test_shape_mismatched_previous_falls_back_to_gray(self):
        blocks = np.zeros((4, 16), dtype=np.uint8)
        previous = np.full((8, 16), 9, dtype=np.uint8)
        conceal_blocks(blocks, np.array([1]), previous)
        assert (blocks[1] == 128).all()


class TestDeliveryResilience:
    video = VideoConfig()

    def _deliver(self, faults=None, n_frames=1800, **net_kwargs):
        return deliver_for_config(_network(**net_kwargs), self.video,
                                  source=workload("V8"),
                                  n_frames=n_frames, seed=3,
                                  faults=faults)

    def test_zero_rates_reproduce_clean_run(self):
        clean = self._deliver(faults=None)
        zeroed = self._deliver(faults=FaultConfig())
        assert zeroed.stall_seconds == clean.stall_seconds
        assert zeroed.radio.total == clean.radio.total
        assert zeroed.retries == 0 and zeroed.abandoned_segments == 0
        assert len(zeroed.chunks) == len(clean.chunks)
        assert all(a.finish == b.finish
                   for a, b in zip(zeroed.chunks, clean.chunks))

    def test_same_seed_bit_identical(self):
        faults = FaultConfig(segment_loss=0.2, segment_corruption=0.1,
                             segment_timeout_rate=0.05, seed=11)
        a = self._deliver(faults=faults)
        b = self._deliver(faults=faults)
        assert a.radio.total == b.radio.total
        assert a.retries == b.retries
        assert a.stall_seconds == b.stall_seconds
        assert ([c.finish for c in a.chunks]
                == [c.finish for c in b.chunks])

    def test_retries_cost_radio_energy(self):
        clean = self._deliver()
        lossy = self._deliver(faults=FaultConfig(segment_loss=0.3, seed=5))
        assert lossy.retries > 0
        assert lossy.failed_attempts >= lossy.retries
        assert lossy.radio.active_energy > clean.radio.active_energy

    def test_abandonment_bounded_by_retries(self):
        faults = FaultConfig(segment_loss=0.97, max_retries=2, seed=1)
        lossy = self._deliver(faults=faults, n_frames=600)
        assert lossy.abandoned_segments > 0
        assert all(c.attempts <= 1 + faults.max_retries
                   for c in lossy.chunks)
        abandoned = [c for c in lossy.chunks if c.abandoned]
        assert len(abandoned) == lossy.abandoned_segments
        assert all(c.size_bytes == 0 for c in abandoned)
        # Playback still covers the whole video: abandoned segments
        # play as concealed freezes, not as missing time.
        clean = self._deliver(n_frames=600)
        assert len(lossy.chunks) == len(clean.chunks)

    def test_panic_rung_engages(self):
        faults = FaultConfig(segment_loss=0.5, panic_after_failures=1,
                             seed=2)
        lossy = self._deliver(faults=faults, abr_fixed_rung=3)
        assert lossy.panic_fetches > 0

    def test_timeout_faults_counted(self):
        faults = FaultConfig(segment_timeout_rate=0.4, seed=6)
        result = self._deliver(faults=faults, n_frames=900)
        assert result.timeouts > 0


class TestPipelineFaults:
    def test_zero_rates_bit_identical_to_clean(self):
        clean = simulate(workload("V8"), GAB, n_frames=24, seed=5)
        cfg = replace(SimulationConfig(), faults=FaultConfig())
        zeroed = simulate(workload("V8"), GAB, n_frames=24, seed=5,
                          config=cfg)
        assert zeroed.energy.total == clean.energy.total
        assert (zeroed.timeline.finish == clean.timeline.finish).all()
        assert zeroed.write_bytes == clean.write_bytes
        assert zeroed.concealed_blocks == 0
        assert zeroed.fallback_writes == 0

    def test_bit_errors_concealed_deterministically(self):
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(block_bit_error=2e-5, seed=8))
        a = simulate(workload("V8"), GAB, n_frames=24, seed=5, config=cfg)
        b = simulate(workload("V8"), GAB, n_frames=24, seed=5, config=cfg)
        assert a.concealed_blocks > 0
        assert a.concealed_blocks == b.concealed_blocks
        assert a.energy.total == b.energy.total

    def test_collisions_always_fall_back(self):
        clean = simulate(workload("V8"), GAB, n_frames=24, seed=5)
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(digest_collision=2e-3, seed=8))
        run = simulate(workload("V8"), GAB, n_frames=24, seed=5,
                       config=cfg)
        assert run.injected_collisions > 0
        assert run.fallback_writes == run.injected_collisions
        # No injected collision slips through as silently-wrong content.
        assert run.silent_collisions == clean.silent_collisions

    def test_unverified_collisions_go_silent(self):
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(digest_collision=2e-3, seed=8,
                                         verify_digests=False))
        clean = simulate(workload("V8"), GAB, n_frames=24, seed=5)
        run = simulate(workload("V8"), GAB, n_frames=24, seed=5,
                       config=cfg)
        assert run.fallback_writes == 0
        assert (run.silent_collisions
                == clean.silent_collisions + run.injected_collisions)

    def test_faults_work_without_mach(self):
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(block_bit_error=2e-5,
                                         digest_collision=1e-3, seed=8))
        run = simulate(workload("V8"), RACE_TO_SLEEP, n_frames=24,
                       seed=5, config=cfg)
        assert run.concealed_blocks > 0
        assert run.injected_collisions == 0  # no MACH, no collisions


class TestDecoderConcealment:
    def _encoded_frames(self, rng, n=3):
        encoder = Encoder(quality=70, gop_length=8)
        frames = []
        for _ in range(n):
            image = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
            frames.append(encoder.encode_frame(image).data)
        return frames

    def test_strict_decoder_still_raises(self):
        rng = np.random.default_rng(0)
        first, second, _ = self._encoded_frames(rng)
        decoder = Decoder()
        decoder.decode_frame(first)
        truncated = second[:len(second) // 2]  # bitstream exhausts
        with pytest.raises((CodecError, ValueError)):
            decoder.decode_frame(truncated)

    def test_concealing_decoder_absorbs_corruption(self):
        rng = np.random.default_rng(0)
        first, second, third = self._encoded_frames(rng)
        decoder = Decoder(conceal_errors=True)
        reference = decoder.decode_frame(first).copy()
        image = decoder.decode_frame(second[:len(second) // 2])
        assert image.shape == reference.shape
        assert decoder.concealed_macroblocks > 0
        assert decoder.concealed_frames == 1
        # The stream recovers: the next clean frame decodes normally.
        after = decoder.decode_frame(third)
        assert after.shape == reference.shape

    def test_concealment_off_by_default_matches_old_behavior(self):
        rng = np.random.default_rng(1)
        frames = self._encoded_frames(rng)
        strict, concealing = Decoder(), Decoder(conceal_errors=True)
        for data in frames:
            assert (strict.decode_frame(data)
                    == concealing.decode_frame(data)).all()
        assert concealing.concealed_macroblocks == 0

    def test_p_frame_before_i_concealed_gray(self):
        rng = np.random.default_rng(2)
        encoder = Encoder(quality=70, gop_length=8)
        encoder.encode_frame(
            rng.integers(0, 256, size=(64, 64), dtype=np.uint8))
        p_frame = encoder.encode_frame(
            rng.integers(0, 256, size=(64, 64), dtype=np.uint8))
        decoder = Decoder(conceal_errors=True)
        image = decoder.decode_frame(p_frame.data)
        assert decoder.concealed_frames == 1
        assert image.shape == (64, 64)
