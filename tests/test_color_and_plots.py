"""Tests for colour-space conversion and terminal plotting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.analysis import bar_chart, sparkline, stacked_area
from repro.errors import GeometryError
from repro.video import luma, rgb_to_ycbcr, ycbcr_to_rgb


class TestColorConversion:
    def test_known_primaries(self):
        rgb = np.asarray([[255, 255, 255], [0, 0, 0]], dtype=np.uint8)
        ycc = rgb_to_ycbcr(rgb)
        assert ycc[0, 0] == 255 and ycc[1, 0] == 0  # luma extremes
        assert abs(int(ycc[0, 1]) - 128) <= 1  # neutral chroma
        assert abs(int(ycc[1, 2]) - 128) <= 1

    def test_red_has_high_cr(self):
        red = np.asarray([[255, 0, 0]], dtype=np.uint8)
        ycc = rgb_to_ycbcr(red)
        assert ycc[0, 2] > 200

    @given(arrays(np.uint8, (10, 3)))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_within_one(self, rgb):
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1

    def test_image_shape_preserved(self, rng):
        image = rng.integers(0, 256, (8, 12, 3), dtype=np.uint8)
        assert rgb_to_ycbcr(image).shape == image.shape

    def test_block_matrix_supported(self, random_blocks):
        converted = rgb_to_ycbcr(random_blocks)
        assert converted.shape == random_blocks.shape
        back = ycbcr_to_rgb(converted)
        assert np.abs(back.astype(int)
                      - random_blocks.astype(int)).max() <= 1

    def test_luma_shapes(self, rng):
        image = rng.integers(0, 256, (8, 12, 3), dtype=np.uint8)
        assert luma(image).shape == (8, 12)
        blocks = rng.integers(0, 256, (5, 48), dtype=np.uint8)
        assert luma(blocks).shape == (5, 16)

    def test_gab_matches_survive_in_ycbcr(self):
        """A uniform colour shift stays a uniform shift in YCbCr-land
        closely enough for gradient matching (the paper's claim that
        the technique is colour-space generic)."""
        from repro.core.gradient import to_gradient
        flat_a = np.tile(np.asarray([[200, 40, 90]], dtype=np.uint8),
                         (1, 16))
        flat_b = np.tile(np.asarray([[10, 250, 3]], dtype=np.uint8),
                         (1, 16))
        gab_a, _ = to_gradient(rgb_to_ycbcr(flat_a))
        gab_b, _ = to_gradient(rgb_to_ycbcr(flat_b))
        assert (gab_a == gab_b).all()  # flat stays flat across spaces

    def test_bad_dtype(self):
        with pytest.raises(GeometryError):
            rgb_to_ycbcr(np.zeros((4, 3), dtype=np.float32))


class TestSparkline:
    def test_monotonic_series(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestStackedArea:
    def test_full_stack_fills_column(self):
        chart = stacked_area({"a": [0.5] * 8, "b": [0.5] * 8},
                             width=8, height=4)
        lines = chart.splitlines()
        assert len(lines) == 5  # 4 rows + legend
        column = [line[0] for line in lines[:4]]
        assert column == ["b", "b", "a", "a"]
        assert "a=a" in lines[-1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stacked_area({"a": [0.1], "b": [0.1, 0.2]})


class TestBarChart:
    def test_reference_tick(self):
        chart = bar_chart(["x", "yy"], [0.5, 1.0], width=10, reference=1.0)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "|" in lines[0]
        assert "0.500" in lines[0] and "1.000" in lines[1]

    def test_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""
