"""Tests for the viewing-session layer."""

from __future__ import annotations

import pytest

from repro.config import BASELINE, GAB, NetworkConfig, SimulationConfig
from repro.core.session import (
    Pause,
    Play,
    SessionSimulator,
    simulate_session,
)
from repro.video import workload


FRAMES = 24


class TestSessionComposition:
    def test_single_segment(self):
        result = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                  seed=1)
        assert len(result.segments) == 1
        assert result.playback_energy > 0
        assert result.playback_seconds > 0
        # Cold start always rebuffers once.
        assert result.stall_seconds > 0

    def test_pause_adds_time_and_energy(self):
        quiet = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                 seed=1)
        paused = simulate_session(
            [Play(workload("V8"), FRAMES), Pause(10.0)], BASELINE, seed=1)
        assert paused.pause_seconds == pytest.approx(10.0)
        assert paused.total_energy > quiet.total_energy
        assert paused.playback_energy == pytest.approx(
            quiet.playback_energy)

    def test_pause_is_cheaper_than_playback(self):
        result = simulate_session(
            [Play(workload("V8"), FRAMES), Pause(5.0)], BASELINE, seed=1)
        playback_power = result.playback_energy / result.playback_seconds
        pause_power = result.pause_energy / result.pause_seconds
        assert pause_power < playback_power

    def test_seek_rebuffers(self):
        plain = simulate_session(
            [Play(workload("V8"), FRAMES), Play(workload("V1"), FRAMES)],
            BASELINE, seed=1)
        seeking = simulate_session(
            [Play(workload("V8"), FRAMES),
             Play(workload("V1"), FRAMES, seek=True)],
            BASELINE, seed=1)
        assert seeking.stall_seconds > plain.stall_seconds
        assert seeking.rebuffer_energy > plain.rebuffer_energy

    def test_rebuffer_time_tracks_preroll(self):
        fast = SimulationConfig(network=NetworkConfig(preroll_frames=27,
                                                      chunk_interval=0.45))
        slow = SimulationConfig(network=NetworkConfig(preroll_frames=270,
                                                      chunk_interval=0.45))
        a = SessionSimulator(BASELINE, fast)._rebuffer_seconds()
        b = SessionSimulator(BASELINE, slow)._rebuffer_seconds()
        assert b > a

    def test_drops_aggregate(self):
        result = simulate_session(
            [Play(workload("V3"), 48), Play(workload("V3"), 48)],
            BASELINE, seed=3)
        assert result.drops == sum(r.drops for r in result.segments)

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            simulate_session(["not-an-event"], BASELINE)

    def test_gab_session_beats_baseline(self):
        events = [Play(workload("V8"), FRAMES), Pause(2.0),
                  Play(workload("V14"), FRAMES, seek=True)]
        base = simulate_session(events, BASELINE, seed=2)
        gab = simulate_session(events, GAB, seed=2)
        assert gab.playback_energy < base.playback_energy
        # Idle states are scheme-independent.
        assert gab.pause_energy == pytest.approx(base.pause_energy)

    def test_average_power(self):
        result = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                  seed=1)
        assert 0.1 < result.average_power < 10.0  # sane watts

    def test_psr_flag_passthrough(self):
        events = [Play(workload("V8"), FRAMES), Pause(5.0)]
        plain = simulate_session(events, BASELINE, seed=1)
        psr = simulate_session(events, BASELINE, seed=1,
                               panel_self_refresh=True)
        assert psr.pause_energy < plain.pause_energy


class TestSessionEdgeCases:
    def test_zero_length_play_is_noop(self):
        result = simulate_session([Play(workload("V8"), 0)], BASELINE,
                                  seed=1)
        assert result.segments == []
        assert result.total_energy == 0.0
        assert result.stall_seconds == 0.0
        # A zero-length Play does not consume the cold-start rebuffer:
        # the next real Play still pays it.
        with_noop = simulate_session(
            [Play(workload("V8"), 0), Play(workload("V8"), FRAMES)],
            BASELINE, seed=1)
        plain = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                 seed=1)
        assert with_noop.stall_seconds == pytest.approx(plain.stall_seconds)

    def test_back_to_back_seeks_stack_stalls(self):
        single = simulate_session(
            [Play(workload("V8"), FRAMES)], BASELINE, seed=1)
        double = simulate_session(
            [Play(workload("V8"), FRAMES),
             Play(workload("V8"), FRAMES, seek=True),
             Play(workload("V8"), FRAMES, seek=True)],
            BASELINE, seed=1)
        # Cold start + two seeks = three full rebuffers.
        assert double.stall_seconds == pytest.approx(
            3 * single.stall_seconds)
        assert double.rebuffer_energy == pytest.approx(
            3 * single.rebuffer_energy)

    def test_pause_only_session(self):
        result = simulate_session([Pause(4.0), Pause(6.0)], BASELINE,
                                  seed=1)
        assert result.segments == []
        assert result.pause_seconds == pytest.approx(10.0)
        assert result.stall_seconds == 0.0
        assert result.playback_energy == 0.0
        assert result.total_energy == pytest.approx(result.pause_energy)
        assert result.average_power > 0

    def test_psr_idle_power_ordering(self):
        config = SimulationConfig()
        plain = SessionSimulator(BASELINE, config)._frozen_frame_power()
        psr = SessionSimulator(BASELINE, config,
                               panel_self_refresh=True)._frozen_frame_power()
        assert psr < plain
        # PSR still pays the panel and the VD's deep-sleep floor.
        floor = (config.display.power
                 + config.decoder.power_states.s3_power)
        assert psr > floor

    def test_self_refresh_fraction_is_configurable(self):
        from dataclasses import replace

        from repro.config import DramConfig
        from repro.errors import ConfigError

        base = SimulationConfig()
        deep = SimulationConfig(
            dram=replace(base.dram, self_refresh_fraction=0.01))
        shallow = SimulationConfig(
            dram=replace(base.dram, self_refresh_fraction=0.9))
        powers = [
            SessionSimulator(BASELINE, cfg,
                             panel_self_refresh=True)._frozen_frame_power()
            for cfg in (deep, base, shallow)]
        assert powers[0] < powers[1] < powers[2]
        with pytest.raises(ConfigError):
            DramConfig(self_refresh_fraction=1.5)
