"""Tests for the viewing-session layer."""

from __future__ import annotations

import pytest

from repro.config import BASELINE, GAB, NetworkConfig, SimulationConfig
from repro.core.session import (
    Pause,
    Play,
    SessionSimulator,
    simulate_session,
)
from repro.video import workload


FRAMES = 24


class TestSessionComposition:
    def test_single_segment(self):
        result = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                  seed=1)
        assert len(result.segments) == 1
        assert result.playback_energy > 0
        assert result.playback_seconds > 0
        # Cold start always rebuffers once.
        assert result.stall_seconds > 0

    def test_pause_adds_time_and_energy(self):
        quiet = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                 seed=1)
        paused = simulate_session(
            [Play(workload("V8"), FRAMES), Pause(10.0)], BASELINE, seed=1)
        assert paused.pause_seconds == pytest.approx(10.0)
        assert paused.total_energy > quiet.total_energy
        assert paused.playback_energy == pytest.approx(
            quiet.playback_energy)

    def test_pause_is_cheaper_than_playback(self):
        result = simulate_session(
            [Play(workload("V8"), FRAMES), Pause(5.0)], BASELINE, seed=1)
        playback_power = result.playback_energy / result.playback_seconds
        pause_power = result.pause_energy / result.pause_seconds
        assert pause_power < playback_power

    def test_seek_rebuffers(self):
        plain = simulate_session(
            [Play(workload("V8"), FRAMES), Play(workload("V1"), FRAMES)],
            BASELINE, seed=1)
        seeking = simulate_session(
            [Play(workload("V8"), FRAMES),
             Play(workload("V1"), FRAMES, seek=True)],
            BASELINE, seed=1)
        assert seeking.stall_seconds > plain.stall_seconds
        assert seeking.rebuffer_energy > plain.rebuffer_energy

    def test_rebuffer_time_tracks_preroll(self):
        fast = SimulationConfig(network=NetworkConfig(preroll_frames=27,
                                                      chunk_interval=0.45))
        slow = SimulationConfig(network=NetworkConfig(preroll_frames=270,
                                                      chunk_interval=0.45))
        a = SessionSimulator(BASELINE, fast)._rebuffer_seconds()
        b = SessionSimulator(BASELINE, slow)._rebuffer_seconds()
        assert b > a

    def test_drops_aggregate(self):
        result = simulate_session(
            [Play(workload("V3"), 48), Play(workload("V3"), 48)],
            BASELINE, seed=3)
        assert result.drops == sum(r.drops for r in result.segments)

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            simulate_session(["not-an-event"], BASELINE)

    def test_gab_session_beats_baseline(self):
        events = [Play(workload("V8"), FRAMES), Pause(2.0),
                  Play(workload("V14"), FRAMES, seek=True)]
        base = simulate_session(events, BASELINE, seed=2)
        gab = simulate_session(events, GAB, seed=2)
        assert gab.playback_energy < base.playback_energy
        # Idle states are scheme-independent.
        assert gab.pause_energy == pytest.approx(base.pause_energy)

    def test_average_power(self):
        result = simulate_session([Play(workload("V8"), FRAMES)], BASELINE,
                                  seed=1)
        assert 0.1 < result.average_power < 10.0  # sane watts

    def test_psr_flag_passthrough(self):
        events = [Play(workload("V8"), FRAMES), Pause(5.0)]
        plain = simulate_session(events, BASELINE, seed=1)
        psr = simulate_session(events, BASELINE, seed=1,
                               panel_self_refresh=True)
        assert psr.pause_energy < plain.pause_energy
