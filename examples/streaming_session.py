#!/usr/bin/env python
"""A realistic viewing session: what does the recipe buy a handheld?

Simulates a session a real viewer might have — a test pattern, a movie
trailer (paused halfway through to read a message), then a seek into a
game capture — under every Fig. 11 scheme, and translates the energy
into battery impact for a phone-sized cell. Pauses and seeks matter:
during a pause the decoder sleeps deep while the display keeps
re-scanning the frozen frame, and a seek flushes the streaming buffer
and stalls until the pre-roll refills.

Run:  python examples/streaming_session.py
"""

from __future__ import annotations

from repro import FIG11_SCHEMES, Pause, Play, simulate_session, workload
from repro.analysis import bar_chart, format_table

#: A typical handheld battery: 3000 mAh at 3.85 V nominal.
BATTERY_JOULES = 3.0 * 3.85 * 3600

FRAMES_PER_CLIP = 150

SESSION = [
    Play(workload("V1"), FRAMES_PER_CLIP),  # test card
    Play(workload("V6"), FRAMES_PER_CLIP // 2),  # trailer...
    Pause(8.0),  # ...paused to read a message
    Play(workload("V6"), FRAMES_PER_CLIP // 2),  # ...resumed
    Play(workload("V15"), FRAMES_PER_CLIP, seek=True),  # seek into a game
]


def main() -> None:
    print("Session: V1 -> V6 (pause mid-clip) -> seek -> V15, "
          f"{FRAMES_PER_CLIP} frames per clip at 60 fps\n")

    rows = []
    normalized = []
    names = []
    base_energy = None
    for scheme in FIG11_SCHEMES:
        result = simulate_session(SESSION, scheme, seed=0)
        if base_energy is None:
            base_energy = result.total_energy
        power = result.average_power
        two_hours = power * 7200
        rows.append([
            scheme.name,
            result.total_energy / base_energy,
            result.playback_energy,
            result.pause_energy + result.rebuffer_energy,
            result.stall_seconds,
            result.drops,
            two_hours / BATTERY_JOULES,
        ])
        names.append(scheme.name)
        normalized.append(result.total_energy / base_energy)
    print(format_table(
        ["scheme", "normalized", "playback J", "idle J", "stall s",
         "drops", "battery/2h"],
        rows, title="Session totals (video subsystem only)"))

    print("\nNormalized session energy (| marks the baseline):")
    print(bar_chart(names, normalized, width=46, reference=1.0))

    base_row, gab_row = rows[0], rows[-1]
    print(f"\n=> Two hours of this usage costs {base_row[6]:.1%} of the "
          f"battery on the baseline pipeline and {gab_row[6]:.1%} with "
          f"the full recipe, while drops go {base_row[5]} -> "
          f"{gab_row[5]}. Pause/rebuffer energy is scheme-independent "
          "— the recipe attacks the playback part.")


if __name__ == "__main__":
    main()
