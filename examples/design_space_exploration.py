#!/usr/bin/env python
"""Design-space exploration: is the paper's recipe the right corner?

Sweeps batch size x VD frequency x content-cache mode on one video and
ranks configurations by energy, flagging any that drop frames.  This
reproduces the reasoning behind the paper's chosen operating point
(batch 16, high frequency, gab tagging) and exposes the trade-offs —
e.g. large batches cost frame-buffer memory (Fig. 12a).

Run:  python examples/design_space_exploration.py [VIDEO_KEY]
"""

from __future__ import annotations

import sys

from repro import BASELINE, SchemeConfig, simulate, workload
from repro.analysis import format_table

BATCHES = (1, 4, 8, 16)
CACHES = (None, "mab", "gab")
FRAMES = 150


def main() -> None:
    video_key = sys.argv[1] if len(sys.argv) > 1 else "V14"
    profile = workload(video_key)
    print(f"Exploring {len(BATCHES) * 2 * len(CACHES)} configurations "
          f"on {profile.key} ({profile.name})\n")

    base = simulate(profile, BASELINE, n_frames=FRAMES, seed=3)
    rows = []
    for batch in BATCHES:
        for racing in (False, True):
            for cache in CACHES:
                scheme = SchemeConfig(
                    name=f"b{batch}/{'300' if racing else '150'}MHz"
                         f"/{cache or 'raw'}",
                    batch_size=batch,
                    racing=racing,
                    content_cache=cache,
                    display_caching=cache is not None,
                )
                result = simulate(profile, scheme, n_frames=FRAMES, seed=3)
                rows.append([
                    scheme.name,
                    result.energy.total / base.energy.total,
                    result.drops,
                    result.peak_footprint_native_mb,
                    result.deep_sleep_residency,
                ])
    rows.sort(key=lambda row: row[1])
    print(format_table(
        ["configuration", "normalized energy", "drops",
         "peak fb (4K MB)", "S3"],
        rows, title="Design space, best first"))

    best = rows[0]
    print(f"\n=> Best configuration: {best[0]} at "
          f"{1 - best[1]:.1%} saving, {best[2]} drops, "
          f"{best[3]:.0f} MB of frame buffers.")
    zero_drop = [row for row in rows if row[2] == 0]
    if zero_drop:
        print(f"   Best with zero drops: {zero_drop[0][0]} "
              f"({1 - zero_drop[0][1]:.1%} saving).")
    print("   The paper picks batch-16 / 300 MHz / gab — check where "
          "it landed above.")


if __name__ == "__main__":
    main()
