#!/usr/bin/env python
"""Adaptive streaming over a flaky cellular link, end to end.

The other examples assume the network keeps up.  This one switches the
session to the trace-driven delivery model (``NetworkConfig
(mode="trace")``): the video is cut into one-second segments at a
bitrate ladder, a BBA-style ABR picks a rung per segment against an
LTE-like bandwidth trace, and stalls fall out of playback-buffer
occupancy instead of a fixed pre-roll formula.  The radio's
RRC-state energy (active / tail / idle, promotions) is accounted per
download and added to the session total.

Two deliveries of the same session are compared:

* **steady** — one segment per segment duration; the radio's tail
  timer never expires, so the modem burns tail power all session;
* **burst** — fill the playback buffer, park the modem until the low
  watermark; the tail time becomes idle time (the BurstLink idea, the
  network-side twin of race-to-sleep).

Run:  python examples/adaptive_streaming.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import Play, RACE_TO_SLEEP, simulate_session, workload
from repro.analysis import format_table
from repro.config import NetworkConfig, SimulationConfig
from repro.units import mbps

# Half a minute per clip at 60 fps — long enough that the playback
# buffer (10 s) actually fills and the burst scheduler gets to park
# the modem between fills.
FRAMES = 1800

SESSION = [
    Play(workload("V8"), FRAMES),  # movie clip
    Play(workload("V15"), FRAMES, seek=True),  # seek into a game capture
]


def main() -> None:
    # A fixed rung keeps the two delivery modes byte-identical so the
    # radio comparison is apples to apples; swap in abr="bba" to watch
    # the buffer-based policy ride the trace instead.
    network = NetworkConfig(mode="trace", trace_kind="lte",
                            mean_bandwidth=mbps(24), trace_seed=3,
                            abr="fixed", abr_fixed_rung=2)
    rows = []
    results = {}
    for mode in ("steady", "burst"):
        config = SimulationConfig(network=replace(network,
                                                  download_mode=mode))
        result = simulate_session(SESSION, RACE_TO_SLEEP, config=config,
                                  seed=3)
        results[mode] = result
        radio_active = sum(d.radio.active_energy + d.radio.promotion_energy
                           for d in result.deliveries)
        radio_tail = sum(d.radio.tail_energy for d in result.deliveries)
        radio_idle = sum(d.radio.idle_energy for d in result.deliveries)
        delivered = sum(c.size_bytes for d in result.deliveries
                        for c in d.chunks)
        rows.append([
            mode,
            result.stall_seconds,
            delivered * 8 / 1e6,
            result.network_energy,
            radio_active, radio_tail, radio_idle,
            result.total_energy,
        ])
    print("Session: V8 -> seek -> V15 over a 24 Mbit/s LTE-like trace, "
          "fixed 8 Mbit/s rung, race-to-sleep decode\n")
    print(format_table(
        ["download", "stall s", "Mbit delivered", "radio J",
         "active+promo J", "tail J", "idle J", "session J"],
        rows, title="Steady vs burst delivery of the same session"))

    steady, burst = results["steady"], results["burst"]
    saving = 1 - burst.network_energy / steady.network_energy
    print(f"\n=> Same video, same stalls ({steady.stall_seconds:.2f} s vs "
          f"{burst.stall_seconds:.2f} s), but bursting the downloads and "
          f"deep-sleeping the modem cuts radio energy by {saving:.0%} — "
          "the paper's race-to-sleep recipe applied to the radio instead "
          "of the decoder.")


if __name__ == "__main__":
    main()
