#!/usr/bin/env python
"""Bring your own content: profile a custom video and predict savings.

Defines two synthetic profiles the paper never measured — a slideshow
(near-static, huge flat regions) and a sports broadcast (fast pans,
heavy grain) — then runs the content census and the full GAB pipeline
on each to predict how well the paper's recipe would transfer.

Run:  python examples/custom_video_profile.py
"""

from __future__ import annotations

from repro import BASELINE, GAB, MAB, SimulationConfig, simulate
from repro.analysis import content_census, format_table
from repro.video import SyntheticVideo, VideoProfile

SLIDESHOW = VideoProfile(
    key="X1", name="Slideshow", description="Photo slideshow with cuts",
    n_frames=600,
    f_common=0.62, f_unique=0.18, f_flat=0.55, p_offset=0.25,
    flat_palette=3, common_pool=16, p_update=0.01, scene_len=180,
    complexity_mean=0.85,
)

SPORTS = VideoProfile(
    key="X2", name="Sports", description="Fast pans, crowd grain",
    n_frames=600,
    f_common=0.30, f_unique=0.05, f_flat=0.12, p_offset=0.55,
    flat_palette=12, common_pool=48, p_update=0.30, scene_len=35,
    complexity_mean=1.10,
)

FRAMES = 150


def main() -> None:
    config = SimulationConfig()
    rows = []
    for profile in (SLIDESHOW, SPORTS):
        stream = list(SyntheticVideo(config.video, profile, seed=11,
                                     n_frames=FRAMES))
        census = content_census(stream)
        gab_census = content_census(stream, use_gradient=True)
        base = simulate(profile, BASELINE, n_frames=FRAMES, seed=11)
        mab = simulate(profile, MAB, n_frames=FRAMES, seed=11)
        gab = simulate(profile, GAB, n_frames=FRAMES, seed=11)
        rows.append([
            profile.name,
            census.match_fraction,
            gab_census.match_fraction,
            mab.energy.total / base.energy.total,
            gab.energy.total / base.energy.total,
            gab.write_savings,
        ])
    print(format_table(
        ["content", "mab census", "gab census", "MAB energy",
         "GAB energy", "gab write savings"],
        rows, title="Custom profiles under the paper's recipe"))

    slideshow, sports = rows
    print("\n=> The slideshow's flat, static content plays to MACH's "
          f"strengths ({1 - slideshow[4]:.1%} energy saving); the "
          "grainy sports feed mostly defeats content caching "
          f"({1 - sports[4]:.1%}), leaving Race-to-Sleep to do the "
          "work — exactly the content-dependence the paper's V1-vs-V3 "
          "spread shows.")


if __name__ == "__main__":
    main()
