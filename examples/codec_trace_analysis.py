#!/usr/bin/env python
"""From pixels to energy: run *real decoded frames* through the recipe.

The other examples use the synthetic content generator; this one walks
the full adoption path for actual pixel data:

1. render a procedural animation (a moving scene with flat UI panels);
2. compress and decompress it with the package's block codec — the
   decoded frames now carry genuine quantization noise and motion;
3. capture the decoder's output as a FrameTrace (saved to disk, the
   interchange format for externally decoded content);
4. replay the trace through the playback pipeline under the baseline
   and GAB, and through the Sec. 6.4 recording pipeline.

Run:  python examples/codec_trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import BASELINE, GAB, simulate
from repro.analysis import content_census, format_table
from repro.core.pipelines import RecordingPipeline
from repro.video.codec import Decoder, Encoder
from repro.video.trace import FrameTrace

WIDTH, HEIGHT, N_FRAMES = 192, 112, 48


def render_animation() -> list:
    """A luma animation: drifting gradient sky + static UI panels."""
    frames = []
    y, x = np.mgrid[0:HEIGHT, 0:WIDTH]
    for t in range(N_FRAMES):
        sky = ((x * 1.5 + y + t * 4) % 256).astype(np.uint8)
        frame = sky.copy()
        frame[8:40, 8:72] = 40  # a flat HUD panel
        frame[80:104, 120:184] = 200  # another panel
        blob_x = 30 + t * 2
        frame[50:66, blob_x:blob_x + 16] = 128  # a moving sprite
        frames.append(frame)
    return frames


def main() -> None:
    print("1. rendering a procedural animation "
          f"({WIDTH}x{HEIGHT}, {N_FRAMES} frames)")
    animation = render_animation()

    print("2. encoding + decoding with the block codec (quality 70)")
    encoder, decoder = Encoder(quality=70, gop_length=12), Decoder()
    decoded = []
    total_bits = 0
    for image in animation:
        encoded = encoder.encode_frame(image)
        total_bits += encoded.bits
        decoded.append(decoder.decode_frame(encoded.data))
    kbps = total_bits / (N_FRAMES / 60) / 1000
    print(f"   bitstream: {total_bits // 8} bytes ({kbps:.0f} kbit/s at "
          "60 fps)")

    print("3. capturing the decoder output as a FrameTrace")
    rgb = [np.repeat(image[:, :, None], 3, axis=2) for image in decoded]
    trace = FrameTrace.from_images(rgb, block_size=4)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "animation.npz"
        trace.save(path)
        reloaded = FrameTrace.load(path)
        print(f"   saved + reloaded {path.stat().st_size // 1024} KB, "
              f"{len(reloaded)} frames")

    census = content_census(list(trace))
    print(f"   census: {census.intra_fraction:.0%} intra / "
          f"{census.inter_fraction:.0%} inter / "
          f"{census.none_fraction:.0%} none")

    print("4. replaying through the playback and recording pipelines\n")
    base = simulate(trace, BASELINE, seed=1)
    gab = simulate(trace, GAB, seed=1)
    recording = RecordingPipeline().run(trace.frames())
    rows = [
        ["playback energy (GAB vs baseline)",
         1 - gab.energy.total / base.energy.total],
        ["frame-buffer write savings", gab.write_savings],
        ["display read savings", gab.read_savings],
        ["recording-pipeline traffic savings", recording.total_savings],
    ]
    print(format_table(["metric", "value"], rows,
                       title="Results on codec-decoded content"))
    print("\n=> The UI panels and the drifting gradient are exactly the "
          "structures gab digests capture, even after real quantization "
          "noise from the codec.")


if __name__ == "__main__":
    main()
