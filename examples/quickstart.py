#!/usr/bin/env python
"""Quickstart: how much energy do the paper's three techniques save?

Simulates one video (Skyfall, the paper's best case) under the baseline
and under the full GAB stack (Race-to-Sleep + gradient content caching
+ display caching), then prints the energy breakdown and the headline
metrics.

Run:  python examples/quickstart.py [VIDEO_KEY] [N_FRAMES]
"""

from __future__ import annotations

import sys

from repro import BASELINE, GAB, RACE_TO_SLEEP, simulate, workload
from repro.analysis import format_table


def main() -> None:
    video_key = sys.argv[1] if len(sys.argv) > 1 else "V8"
    n_frames = int(sys.argv[2]) if len(sys.argv) > 2 else 180

    profile = workload(video_key)
    print(f"Simulating {n_frames} frames of {profile.key} "
          f"({profile.name}: {profile.description})\n")

    results = {
        scheme.name: simulate(profile, scheme, n_frames=n_frames, seed=1)
        for scheme in (BASELINE, RACE_TO_SLEEP, GAB)
    }
    base = results["Baseline"]

    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.energy.per_frame_mj(n_frames),
            result.energy.total / base.energy.total,
            result.drops,
            result.deep_sleep_residency,
            result.write_savings,
        ])
    print(format_table(
        ["scheme", "mJ/frame", "normalized", "drops", "S3 residency",
         "write savings"],
        rows, title="Scheme comparison"))

    gab = results["GAB"]
    stack = gab.energy.normalized_to(base.energy)
    print("\nGAB energy stack (fractions of baseline total):")
    for component, fraction in stack.items():
        bar = "#" * int(round(fraction * 120))
        print(f"  {component:15s} {fraction:6.3f}  {bar}")

    saving = 1 - gab.energy.total / base.energy.total
    print(f"\n=> GAB saves {saving:.1%} of system energy on {profile.key} "
          f"with {gab.drops} dropped frames "
          f"(baseline dropped {base.drops}).")
    print("   The paper reports 21% on average and up to 33% (V8).")


if __name__ == "__main__":
    main()
