"""Calibration harness: measure every DESIGN.md section-5 target.

Run:  python tools/calibrate.py [--frames N] [--videos V1,V2,...]

Prints, per video and in aggregate:
  * Fig. 2b region mix (baseline, 150 MHz);
  * Fig. 7b content census (intra/inter/none, 16-frame window);
  * realized MACH match rates and write savings (mab and gab);
  * DC read savings (Fig. 10e) and digest fraction (Fig. 10d);
  * normalized scheme energies (Fig. 11) and their component stacks.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import simulate, workload
from repro.analysis import content_census, region_mix
from repro.analysis.tables import format_table
from repro.config import (
    BASELINE, BATCHING, GAB, MAB, RACE_TO_SLEEP, RACING,
    SimulationConfig,
)
from repro.video import SyntheticVideo


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--frames", type=int, default=150)
    parser.add_argument("--videos", type=str,
                        default="V1,V3,V4,V8,V9,V12,V14")
    args = parser.parse_args()
    keys = args.videos.split(",")
    cfg = SimulationConfig()
    t0 = time.time()

    # --- census + regions ------------------------------------------------
    census_rows = []
    agg = np.zeros(3)
    for key in keys:
        prof = workload(key)
        stream = list(SyntheticVideo(cfg.video, prof, seed=7,
                                     n_frames=args.frames))
        census = content_census(stream)
        gab_census = content_census(stream, use_gradient=True)
        census_rows.append([
            key, census.intra_fraction, census.inter_fraction,
            census.none_fraction, gab_census.match_fraction,
        ])
        agg += [census.intra_fraction, census.inter_fraction,
                census.none_fraction]
    census_rows.append(["avg", *(agg / len(keys)), 0.0])
    print(format_table(
        ["video", "intra", "inter", "none", "gab-match"],
        census_rows, title="\n== Fig 7b census (paper: .42/.15/.43) =="))

    # --- schemes ------------------------------------------------------------
    schemes = (BASELINE, BATCHING, RACING, RACE_TO_SLEEP, MAB, GAB)
    energy_rows = []
    detail_rows = []
    norm_sums = np.zeros(len(schemes))
    for key in keys:
        prof = workload(key)
        results = [simulate(prof, s, n_frames=args.frames, seed=7)
                   for s in schemes]
        base = results[0]
        mix = region_mix(base.timeline.decode_time, cfg.video.frame_interval,
                         cfg.decoder.power_states)
        normalized = [r.energy.total / base.energy.total for r in results]
        norm_sums += normalized
        energy_rows.append([key] + normalized)
        mab_r, gab_r = results[4], results[5]
        detail_rows.append([
            key,
            base.drop_rate,
            mix[list(mix)[0]], mix[list(mix)[1]],
            mix[list(mix)[2]], mix[list(mix)[3]],
            results[3].deep_sleep_residency,
            mab_r.write_savings, gab_r.write_savings,
            gab_r.read_savings,
            gab_r.read_stats.digest_fraction,
        ])
    energy_rows.append(["avg"] + list(norm_sums / len(keys)))
    print(format_table(
        ["video"] + [s.name for s in schemes], energy_rows,
        title="\n== Fig 11 normalized energy "
              "(paper avg: 1.0/.93/1.12/.887/.875/.79) =="))
    print(format_table(
        ["video", "drops", "rI", "rII", "rIII", "rIV", "s3(RtS)",
         "mab-wr", "gab-wr", "gab-rd", "dig-frac"],
        detail_rows,
        title="\n== details (paper: drops .04; regions .04/.12/.37/.40; "
              "s3 .60; mab-wr .13; gab-wr .34; gab-rd .335; dig .38) =="))

    # --- baseline component stack -----------------------------------------------
    prof = workload(keys[0])
    base = simulate(prof, BASELINE, n_frames=args.frames, seed=7)
    comp_rows = [[k, v / base.energy.total]
                 for k, v in base.energy.as_dict().items()]
    print(format_table(
        ["component", "fraction"], comp_rows,
        title=f"\n== baseline component stack ({keys[0]}) "
              "(targets: dc .12, bg .12, vd .22, burst .13, act .28) =="))
    print("\nper-frame baseline energy: "
          f"{base.energy.per_frame_mj(base.n_frames):.2f} mJ "
          f"(target ~16); elapsed {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
